"""Spoofed traffic generation and per-link volume observation.

The origin cannot see which AS originated a spoofed packet — only which
peering link it arrived on (§I).  This module generates spoofed packet
streams from a :class:`~repro.spoof.sources.SourcePlacement`, routes them
to links using a configuration's catchments, and produces the per-link
volume observations the localization pipeline consumes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Mapping, Optional

from ..bgp.simulator import RoutingOutcome
from ..types import ASN, Catchment, LinkId
from .sources import SourcePlacement


@dataclass(frozen=True)
class SpoofedPacket:
    """One spoofed packet as seen at the origin network.

    Attributes:
        ingress_link: peering link the packet arrived on (observable).
        spoofed_source: the forged source address, as a 32-bit int
            (observable but meaningless for attribution).
        true_source_as: ground-truth originating AS (never observable in
            practice; kept for evaluating identification accuracy).
        size_bytes: packet size.
    """

    ingress_link: LinkId
    spoofed_source: int
    true_source_as: ASN
    size_bytes: int = 64


class LinkVolumeMap(Dict[LinkId, float]):
    """Per-link spoofed volumes plus the volume no catchment attributed.

    Behaves exactly like a ``{link: volume}`` dict (all existing callers
    keep working), with one companion value: :attr:`unattributed`, the
    volume originated by sources outside every catchment.  With it, volume
    conservation holds: ``sum(volumes.values()) + volumes.unattributed``
    equals the total volume the placement offered.
    """

    def __init__(
        self,
        volumes: Optional[Mapping[LinkId, float]] = None,
        unattributed: float = 0.0,
    ) -> None:
        super().__init__(volumes or {})
        #: Volume from sources with no route to the prefix under this
        #: configuration (never observable at the origin's links).
        self.unattributed = unattributed

    @property
    def attributed(self) -> float:
        """Total volume that arrived on some peering link."""
        return sum(self.values())

    @property
    def offered(self) -> float:
        """Total volume the sources originated (attributed + unattributed)."""
        return self.attributed + self.unattributed


def link_volumes(
    placement: SourcePlacement,
    catchments: Mapping[LinkId, Catchment],
    total_volume: float = 1.0,
) -> LinkVolumeMap:
    """Noiseless per-link spoofed volume under one configuration.

    Each source AS's volume lands entirely on the link whose catchment
    contains it.  Sources outside every catchment (no route to the prefix,
    e.g. after a withdrawal) deliver nothing to any link; their volume is
    accounted in the returned map's ``unattributed`` companion value so
    volume conservation holds — the caller decides how to treat it.
    """
    catchment_of: Dict[ASN, LinkId] = {}
    for link, members in catchments.items():
        for asn in members:
            catchment_of[asn] = link
    volumes = LinkVolumeMap({link: 0.0 for link in catchments})
    for asn, volume in placement.volume_by_as(total_volume).items():
        link = catchment_of.get(asn)
        if link is not None:
            volumes[link] += volume
        else:
            volumes.unattributed += volume
    return volumes


def link_volumes_from_outcome(
    placement: SourcePlacement,
    outcome: RoutingOutcome,
    total_volume: float = 1.0,
) -> LinkVolumeMap:
    """Per-link volumes computed from a routing outcome's catchments."""
    return link_volumes(placement, outcome.catchments, total_volume)


class SpoofedTrafficGenerator:
    """Generates packet-level spoofed traffic for honeypot experiments.

    Packets are attributed to links via the supplied catchments; spoofed
    source addresses are drawn uniformly from the IPv4 space (classic
    random-spoofing behaviour of amplification attack origins).

    Args:
        placement: where the spoofing sources sit.
        catchments: the active configuration's catchments.
        rng: PRNG for reproducibility.
        packet_size_bytes: size of every generated packet.
    """

    def __init__(
        self,
        placement: SourcePlacement,
        catchments: Mapping[LinkId, Catchment],
        rng: Optional[random.Random] = None,
        packet_size_bytes: int = 64,
    ) -> None:
        if packet_size_bytes <= 0:
            raise ValueError("packet size must be positive")
        self.placement = placement
        self.rng = rng or random.Random()
        self.packet_size_bytes = packet_size_bytes
        self._catchment_of: Dict[ASN, LinkId] = {}
        for link, members in catchments.items():
            for asn in members:
                self._catchment_of[asn] = link
        # Sources with no route never deliver packets.
        self._active: List[ASN] = sorted(
            asn for asn in placement.spoofing_ases if asn in self._catchment_of
        )
        self._weights = [placement.sources_by_as[asn] for asn in self._active]

    @property
    def active_source_ases(self) -> List[ASN]:
        """Source ASes that currently have a route to the prefix."""
        return list(self._active)

    def packets(self, count: int) -> Iterator[SpoofedPacket]:
        """Yield ``count`` spoofed packets with sources drawn ∝ source counts."""
        if count < 0:
            raise ValueError("packet count must be non-negative")
        if not self._active:
            return
        origins = self.rng.choices(self._active, weights=self._weights, k=count)
        for true_source in origins:
            yield SpoofedPacket(
                ingress_link=self._catchment_of[true_source],
                spoofed_source=self.rng.getrandbits(32),
                true_source_as=true_source,
                size_bytes=self.packet_size_bytes,
            )


def volumes_from_packets(packets: Iterable[SpoofedPacket]) -> Dict[LinkId, float]:
    """Aggregate packets into per-link byte volumes."""
    volumes: Dict[LinkId, float] = {}
    for packet in packets:
        volumes[packet.ingress_link] = (
            volumes.get(packet.ingress_link, 0.0) + packet.size_bytes
        )
    return volumes
