"""Valid-source inference: labeling spoofed traffic without a honeypot.

The paper's alternative to a honeypot (§III-C, citing Lichtblau et al.):
infer the set of *legitimate* source ASes expected on each peering link —
i.e. the link's catchment, as routing is largely symmetric at the AS level
for these purposes — and label traffic whose (ingress link, source AS)
pair is unexpected as spoofed.

Two error sources are modeled, since they drive the method's precision in
practice:

* incomplete learning — legitimate traffic only samples part of the
  catchment, so rarely-seen legitimate sources can be mislabeled spoofed;
* routing asymmetry/churn — a fraction of legitimate sources genuinely
  arrives on a different link than the catchment predicts.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Mapping, Optional, Set, Tuple

from ..types import ASN, Catchment, LinkId


@dataclass(frozen=True)
class LabeledFlow:
    """One observed flow with its spoofed/legitimate verdict.

    Attributes:
        ingress_link: peering link the flow arrived on.
        source_as: AS the flow's source address maps to.
        labeled_spoofed: the classifier's verdict.
        truly_spoofed: ground truth (for accuracy evaluation).
    """

    ingress_link: LinkId
    source_as: ASN
    labeled_spoofed: bool
    truly_spoofed: bool


@dataclass(frozen=True)
class InferenceQuality:
    """Precision/recall of spoofed labeling against ground truth."""

    true_positives: int
    false_positives: int
    true_negatives: int
    false_negatives: int

    @property
    def precision(self) -> float:
        """Fraction of spoofed labels that are truly spoofed (1.0 if none)."""
        labeled = self.true_positives + self.false_positives
        return self.true_positives / labeled if labeled else 1.0

    @property
    def recall(self) -> float:
        """Fraction of truly spoofed flows that were labeled spoofed."""
        actual = self.true_positives + self.false_negatives
        return self.true_positives / actual if actual else 1.0


class ValidSourceInference:
    """Learns expected (link → source ASes) sets and labels flows.

    Args:
        catchments: the active configuration's catchments (ground-truth
            legitimate mapping).
        learning_coverage: fraction of each catchment actually observed in
            legitimate traffic during learning (1.0 = perfect knowledge).
        asymmetry_rate: fraction of legitimate flows that arrive on a
            different link than their catchment predicts.
        rng: PRNG driving the sampling.
    """

    def __init__(
        self,
        catchments: Mapping[LinkId, Catchment],
        learning_coverage: float = 1.0,
        asymmetry_rate: float = 0.0,
        rng: Optional[random.Random] = None,
    ) -> None:
        if not 0.0 < learning_coverage <= 1.0:
            raise ValueError("learning_coverage must be in (0, 1]")
        if not 0.0 <= asymmetry_rate < 1.0:
            raise ValueError("asymmetry_rate must be in [0, 1)")
        self.rng = rng or random.Random()
        self.asymmetry_rate = asymmetry_rate
        self._links = sorted(catchments)
        self._true_catchment_of: Dict[ASN, LinkId] = {}
        self._expected: Dict[LinkId, Set[ASN]] = {}
        for link, members in catchments.items():
            for asn in members:
                self._true_catchment_of[asn] = link
            ordered = sorted(members)
            sample_size = max(1, round(len(ordered) * learning_coverage)) if ordered else 0
            self._expected[link] = set(
                self.rng.sample(ordered, sample_size) if ordered else []
            )

    def expected_sources(self, link: LinkId) -> FrozenSet[ASN]:
        """Learned legitimate source set for ``link``."""
        return frozenset(self._expected.get(link, set()))

    def label(self, ingress_link: LinkId, source_as: ASN) -> bool:
        """Return True if a flow looks spoofed (unexpected on this link)."""
        return source_as not in self._expected.get(ingress_link, set())

    # ------------------------------------------------------------------

    def simulate_flows(
        self,
        legitimate_sources: Iterable[ASN],
        spoofing_sources: Iterable[Tuple[LinkId, ASN]],
    ) -> Tuple[Dict[LinkId, float], InferenceQuality]:
        """Label a mixed workload and compute per-link spoofed volume.

        Args:
            legitimate_sources: ASes sending legitimate flows (one flow
                each); their ingress link follows their catchment, except
                for an ``asymmetry_rate`` fraction that arrives elsewhere.
            spoofing_sources: (ingress link, claimed source AS) pairs for
                spoofed flows — the claimed AS is whatever the forged
                address maps to.

        Returns:
            (per-link spoofed-labeled flow counts, quality metrics).
        """
        volumes: Dict[LinkId, float] = {link: 0.0 for link in self._links}
        tp = fp = tn = fn = 0
        for source in legitimate_sources:
            link = self._true_catchment_of.get(source)
            if link is None:
                continue
            if self.asymmetry_rate and self.rng.random() < self.asymmetry_rate:
                alternates = [l for l in self._links if l != link]
                if alternates:
                    link = self.rng.choice(alternates)
            if self.label(link, source):
                fp += 1
                volumes[link] += 1.0
            else:
                tn += 1
        for link, claimed in spoofing_sources:
            if self.label(link, claimed):
                tp += 1
                volumes[link] += 1.0
            else:
                fn += 1
        quality = InferenceQuality(
            true_positives=tp,
            false_positives=fp,
            true_negatives=tn,
            false_negatives=fn,
        )
        return volumes, quality
