"""Placement of spoofed-traffic sources across ASes (paper §V-D).

The paper's identification-accuracy study places sources of spoofed
traffic across ASes according to three distributions and assumes the
volume of spoofed traffic originated in an AS is proportional to the
number of sources in it:

* **uniform** — each source lands in a uniformly random AS,
* **Pareto** — heavy-tailed, shaped so 80% of sources concentrate in 20%
  of ASes,
* **single source** — one source in one random AS (the common case for
  amplification attacks per AmpPot observations).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, FrozenSet, Mapping, Optional, Sequence

from ..types import ASN

#: Pareto shape for the 80/20 rule: solves 0.8 = 0.2^(1 - 1/α),
#: α = log(5)/log(4) ≈ 1.1606 (classic Pareto-principle exponent).
PARETO_8020_SHAPE = math.log(5) / math.log(4)


@dataclass(frozen=True)
class SourcePlacement:
    """Sources of spoofed traffic placed across ASes.

    Attributes:
        sources_by_as: number of sources hosted per AS (only ASes with at
            least one source appear).
        distribution: name of the generating distribution.
    """

    sources_by_as: Mapping[ASN, int]
    distribution: str = "custom"

    def __post_init__(self) -> None:
        if not self.sources_by_as:
            raise ValueError("placement must contain at least one source")
        for asn, count in self.sources_by_as.items():
            if count <= 0:
                raise ValueError(f"AS {asn} has non-positive source count {count}")

    @property
    def total_sources(self) -> int:
        """Total number of spoofing sources placed."""
        return sum(self.sources_by_as.values())

    @property
    def spoofing_ases(self) -> FrozenSet[ASN]:
        """ASes hosting at least one source."""
        return frozenset(self.sources_by_as)

    def volume_by_as(self, total_volume: float = 1.0) -> Dict[ASN, float]:
        """Spoofed traffic volume per AS, proportional to source count.

        Args:
            total_volume: total volume to distribute (default 1.0, i.e.
                fractions).
        """
        total = self.total_sources
        return {
            asn: total_volume * count / total
            for asn, count in self.sources_by_as.items()
        }


def uniform_placement(
    ases: Sequence[ASN], num_sources: int, rng: Optional[random.Random] = None
) -> SourcePlacement:
    """Place ``num_sources`` sources, each in a uniformly random AS."""
    rng = rng or random.Random()
    _require_sources(num_sources, ases)
    counts: Dict[ASN, int] = {}
    for _ in range(num_sources):
        asn = rng.choice(ases)
        counts[asn] = counts.get(asn, 0) + 1
    return SourcePlacement(counts, distribution="uniform")


def pareto_placement(
    ases: Sequence[ASN],
    num_sources: int,
    rng: Optional[random.Random] = None,
    shape: float = PARETO_8020_SHAPE,
) -> SourcePlacement:
    """Place sources with Pareto-distributed per-AS propensities.

    Each AS draws a Pareto(shape) weight; sources are then assigned
    proportionally to the weights.  With the default shape, roughly 80% of
    sources fall in the top 20% of ASes (the paper's parameterization).
    """
    rng = rng or random.Random()
    _require_sources(num_sources, ases)
    if shape <= 0:
        raise ValueError("Pareto shape must be positive")
    weights = [rng.paretovariate(shape) for _ in ases]
    counts: Dict[ASN, int] = {}
    for asn in rng.choices(ases, weights=weights, k=num_sources):
        counts[asn] = counts.get(asn, 0) + 1
    return SourcePlacement(counts, distribution="pareto")


def single_source_placement(
    ases: Sequence[ASN], rng: Optional[random.Random] = None
) -> SourcePlacement:
    """Place a single source in one AS chosen uniformly at random."""
    rng = rng or random.Random()
    _require_sources(1, ases)
    return SourcePlacement({rng.choice(ases): 1}, distribution="single")


#: Registry used by the Figure 10 experiment to sweep distributions.
PLACEMENT_DISTRIBUTIONS = ("uniform", "pareto", "single")


def make_placement(
    distribution: str,
    ases: Sequence[ASN],
    num_sources: int,
    rng: Optional[random.Random] = None,
) -> SourcePlacement:
    """Dispatch on a distribution name from :data:`PLACEMENT_DISTRIBUTIONS`."""
    if distribution == "uniform":
        return uniform_placement(ases, num_sources, rng)
    if distribution == "pareto":
        return pareto_placement(ases, num_sources, rng)
    if distribution == "single":
        return single_source_placement(ases, rng)
    raise ValueError(
        f"unknown distribution {distribution!r}; "
        f"expected one of {PLACEMENT_DISTRIBUTIONS}"
    )


def _require_sources(num_sources: int, ases: Sequence[ASN]) -> None:
    if num_sources < 1:
        raise ValueError("need at least one source")
    if not ases:
        raise ValueError("cannot place sources over an empty AS list")
