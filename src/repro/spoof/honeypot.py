"""Amplification honeypot (AmpPot-style) for measuring spoofed volume.

The paper proposes hosting a honeypot that *emulates* a service vulnerable
to amplification (DNS open resolver, NTP monlist, chargen, …) inside the
announced prefix.  Because the prefix carries no legitimate traffic, every
query the honeypot receives is spoofed (it is attack traffic aimed at a
reflector), so per-link query counts directly estimate per-link spoofed
volume (§III-C).  AmpPot additionally rate-limits would-be responses so it
never contributes meaningful attack bandwidth; we model the limiter because
it truncates the *response* estimate but not the *request* observation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping

from ..types import LinkId
from .traffic import SpoofedPacket

#: Representative amplification factors (response bytes per request byte)
#: from the amplification-attack literature.
AMPLIFICATION_FACTORS: Mapping[str, float] = {
    "dns": 28.7,
    "ntp": 556.9,
    "chargen": 358.8,
    "ssdp": 30.8,
    "memcached": 10000.0,
}

DEFAULT_SERVICE = "ntp"


@dataclass
class HoneypotReport:
    """Aggregated honeypot observations.

    Attributes:
        queries_by_link: spoofed queries received per peering link.
        bytes_by_link: spoofed request bytes per peering link.
        suppressed_response_bytes: response bytes the rate limiter refused
            to send (what a real reflector would have fired at the victim).
        emitted_response_bytes: response bytes within the rate cap.
    """

    queries_by_link: Dict[LinkId, int] = field(default_factory=dict)
    bytes_by_link: Dict[LinkId, float] = field(default_factory=dict)
    suppressed_response_bytes: float = 0.0
    emitted_response_bytes: float = 0.0

    @property
    def total_queries(self) -> int:
        """Total spoofed queries observed."""
        return sum(self.queries_by_link.values())

    def volume_fractions(self) -> Dict[LinkId, float]:
        """Per-link fraction of observed spoofed volume (sums to 1)."""
        total = sum(self.bytes_by_link.values())
        if total <= 0:
            return {link: 0.0 for link in self.bytes_by_link}
        return {
            link: volume / total for link, volume in self.bytes_by_link.items()
        }


class AmplificationHoneypot:
    """An AmpPot-like honeypot attached to the origin's announced prefix.

    Args:
        service: emulated service name (keys of
            :data:`AMPLIFICATION_FACTORS`).
        response_rate_limit_bytes: cap on response bytes the honeypot is
            willing to emit per observation window (AmpPot's sending-rate
            limit); everything beyond is counted as suppressed.
    """

    def __init__(
        self,
        service: str = DEFAULT_SERVICE,
        response_rate_limit_bytes: float = 10_000.0,
    ) -> None:
        if service not in AMPLIFICATION_FACTORS:
            raise ValueError(
                f"unknown service {service!r}; expected one of "
                f"{sorted(AMPLIFICATION_FACTORS)}"
            )
        if response_rate_limit_bytes < 0:
            raise ValueError("rate limit must be non-negative")
        self.service = service
        self.amplification_factor = AMPLIFICATION_FACTORS[service]
        self.response_rate_limit_bytes = response_rate_limit_bytes

    def observe(self, packets: Iterable[SpoofedPacket]) -> HoneypotReport:
        """Process a stream of spoofed queries into a report."""
        report = HoneypotReport()
        budget = self.response_rate_limit_bytes
        for packet in packets:
            link = packet.ingress_link
            report.queries_by_link[link] = report.queries_by_link.get(link, 0) + 1
            report.bytes_by_link[link] = (
                report.bytes_by_link.get(link, 0.0) + packet.size_bytes
            )
            response = packet.size_bytes * self.amplification_factor
            emitted = min(response, budget)
            budget -= emitted
            report.emitted_response_bytes += emitted
            report.suppressed_response_bytes += response - emitted
        return report
