"""Spoofed-traffic substrate: source placement, traffic, honeypot, labeling."""

from .honeypot import (
    AMPLIFICATION_FACTORS,
    AmplificationHoneypot,
    HoneypotReport,
)
from .inference import InferenceQuality, LabeledFlow, ValidSourceInference
from .sources import (
    PARETO_8020_SHAPE,
    PLACEMENT_DISTRIBUTIONS,
    SourcePlacement,
    make_placement,
    pareto_placement,
    single_source_placement,
    uniform_placement,
)
from .traffic import (
    LinkVolumeMap,
    SpoofedPacket,
    SpoofedTrafficGenerator,
    link_volumes,
    link_volumes_from_outcome,
    volumes_from_packets,
)

__all__ = [
    "SourcePlacement",
    "uniform_placement",
    "pareto_placement",
    "single_source_placement",
    "make_placement",
    "PLACEMENT_DISTRIBUTIONS",
    "PARETO_8020_SHAPE",
    "SpoofedPacket",
    "SpoofedTrafficGenerator",
    "LinkVolumeMap",
    "link_volumes",
    "link_volumes_from_outcome",
    "volumes_from_packets",
    "AmplificationHoneypot",
    "HoneypotReport",
    "AMPLIFICATION_FACTORS",
    "ValidSourceInference",
    "InferenceQuality",
    "LabeledFlow",
]
