"""Exception hierarchy for the :mod:`repro` library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch library failures without masking programming errors such as
:class:`TypeError`.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class TopologyError(ReproError):
    """Raised when an AS-level topology is malformed or inconsistent."""


class RelationshipError(TopologyError):
    """Raised when AS relationship data is contradictory or unknown."""


class AnnouncementError(ReproError):
    """Raised when an announcement configuration is invalid.

    Examples include prepending from a location that is not announced, or
    poisoning via a peering link outside the announcement set.
    """


class SimulationError(ReproError):
    """Raised when BGP route propagation cannot complete."""


class ConvergenceError(SimulationError):
    """Raised when route propagation fails to reach a fixpoint."""


class MeasurementError(ReproError):
    """Raised when catchment measurement inputs are unusable."""


class MappingError(MeasurementError):
    """Raised for invalid IP-to-AS mapping data (bad prefixes, overlaps)."""


class ClusteringError(ReproError):
    """Raised when cluster refinement receives inconsistent catchments."""


class SchedulingError(ReproError):
    """Raised when an announcement schedule cannot be constructed."""


class StrategyError(ReproError):
    """Raised when a traceback strategy is misused or unknown."""


class DataFormatError(ReproError):
    """Raised when an on-disk dataset (as-rel, paths, traces) is malformed."""


class LiveServiceError(ReproError):
    """Raised when the online attribution runtime is misused or its
    state (events, checkpoints) is inconsistent."""


class CheckpointCorruptionError(LiveServiceError):
    """Raised when a checkpoint fails its integrity check and no intact
    fallback (rotated generation ``<path>.1..K`` or legacy ``<path>.bak``)
    exists to roll back to."""


class FleetError(ReproError):
    """Raised when the multi-tenant fleet runtime is misconfigured or a
    fleet event targets a shard that cannot accept it."""


class FaultInjectionError(ReproError):
    """Raised when a fault plan is malformed or names an unknown fault."""


class InjectedFault(FaultInjectionError):
    """A deliberately injected failure from a :class:`~repro.faults.FaultPlan`.

    Raised at an injection site during chaos runs; the resilience layer
    is expected to contain it (retry, fall back, degrade) — it escaping
    to the caller means containment failed.
    """
