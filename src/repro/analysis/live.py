"""Rendering for live-replay runtime statistics (``repro.live``).

The online service emits one :class:`~repro.live.service.WindowStats` per
observation window; these helpers turn that stream into the rolling
progress lines the ``spooftrack live`` command prints and into a compact
end-of-run table for reports.
"""

from __future__ import annotations

from typing import Sequence

from ..live.service import LiveReport, WindowStats

#: Column layout shared by the rolling line and the table.
_HEADER = (
    f"{'win':>4} {'t(min)':>8} {'configuration':<30} {'clus':>5} "
    f"{'mean':>7} {'H(bits)':>7} {'queue':>5} {'dropped':>9} {'unattr':>8}"
)


def render_window(stats: WindowStats) -> str:
    """One rolling progress line for a just-emitted window."""
    return (
        f"{stats.window_index:>4} {stats.clock_minutes:>8.1f} "
        f"{stats.config_label:<30.30} {stats.num_clusters:>5} "
        f"{stats.mean_cluster_size:>7.2f} {stats.entropy:>7.2f} "
        f"{stats.queue_depth:>5} {stats.dropped_volume:>9.3f} "
        f"{stats.unattributed_volume:>8.3f}"
    )


def render_window_table(
    windows: Sequence[WindowStats], every: int = 1
) -> str:
    """Tabulate window statistics, keeping every ``every``-th row.

    The final window is always included so the table ends on the state
    the report describes.
    """
    if every < 1:
        raise ValueError("row stride must be at least 1")
    lines = [_HEADER]
    for position, stats in enumerate(windows):
        if position % every == 0 or position == len(windows) - 1:
            lines.append(render_window(stats))
    return "\n".join(lines)


def live_markdown(report: LiveReport, every: int = 4) -> str:
    """Markdown section summarizing one live replay."""
    lines = [
        "### live replay",
        "",
        "```",
        report.summary(),
        "```",
        "",
        "```",
        render_window_table(report.windows, every=every),
        "```",
    ]
    return "\n".join(lines)
