"""Text rendering of figure results (series tables, sampled points).

The benchmark harness and CLI print figures as aligned text: every series
name, a sample of its points, and the shape notes comparing against the
paper's reported values.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from .figures import FigureResult, Series


def _sample_points(
    points: Sequence[Tuple[float, float]], max_points: int
) -> List[Tuple[float, float]]:
    """Evenly sample at most ``max_points`` points, keeping the endpoints."""
    if len(points) <= max_points:
        return list(points)
    step = (len(points) - 1) / (max_points - 1)
    indices = sorted({round(i * step) for i in range(max_points)})
    return [points[index] for index in indices]


def render_series(series: Series, max_points: int = 10) -> str:
    """One line per sampled point: ``name  x=..  y=..``."""
    lines = [f"  {series.name}:"]
    for x, y in _sample_points(series.points, max_points):
        lines.append(f"    x={x:10.2f}  y={y:10.4f}")
    return "\n".join(lines)


def render_figure(result: FigureResult, max_points: int = 10) -> str:
    """Full text rendering of a figure result."""
    lines = [
        f"=== {result.figure_id}: {result.title} ===",
        f"    x: {result.xlabel}   y: {result.ylabel}",
    ]
    for series in result.series:
        lines.append(render_series(series, max_points))
    if result.notes:
        lines.append("  notes:")
        for note in result.notes:
            lines.append(f"    - {note}")
    return "\n".join(lines)


def figure_markdown(result: FigureResult, max_points: int = 8) -> str:
    """Markdown rendering used when regenerating EXPERIMENTS.md."""
    lines = [
        f"### {result.figure_id} — {result.title}",
        "",
        f"*x: {result.xlabel}; y: {result.ylabel}*",
        "",
    ]
    for series in result.series:
        sampled = _sample_points(series.points, max_points)
        cells = ", ".join(f"({x:g}, {y:.3g})" for x, y in sampled)
        lines.append(f"- **{series.name}**: {cells}")
    if result.notes:
        lines.append("")
        for note in result.notes:
            lines.append(f"> {note}")
    lines.append("")
    return "\n".join(lines)
