"""Table reproductions: Table I (PoPs/providers) and Table II (traceback).

Table I in the paper lists the PEERING muxes and transit providers used in
the experiments; :func:`table1` renders the equivalent for a testbed
(paper mux names, synthetic provider ASNs).  Table II is the qualitative
comparison of IP-traceback approaches, including the paper's own row; it
is a fixed taxonomy reproduced verbatim by :func:`table2`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from ..core.pipeline import Testbed


@dataclass(frozen=True)
class Table:
    """A rendered table: headers plus rows of strings."""

    table_id: str
    title: str
    headers: Sequence[str]
    rows: Sequence[Sequence[str]]

    def render(self) -> str:
        """ASCII rendering with aligned columns."""
        widths = [len(header) for header in self.headers]
        for row in self.rows:
            for index, cell in enumerate(row):
                widths[index] = max(widths[index], len(cell))
        lines = [self.title]
        header_line = "  ".join(
            header.ljust(widths[index]) for index, header in enumerate(self.headers)
        )
        lines.append(header_line)
        lines.append("  ".join("-" * width for width in widths))
        for row in self.rows:
            lines.append(
                "  ".join(cell.ljust(widths[index]) for index, cell in enumerate(row))
            )
        return "\n".join(lines)


def table1(testbed: Testbed) -> Table:
    """PoPs and providers of the testbed (paper Table I equivalent)."""
    rows: List[List[str]] = []
    graph = testbed.graph
    for link in testbed.origin.links:
        rows.append(
            [
                link.link_id,
                f"{link.provider_name or 'Provider'} (AS{link.provider})",
                str(graph.degree(link.provider)),
            ]
        )
    return Table(
        table_id="table1",
        title="Table I: PoPs and providers used in the experiments",
        headers=("Mux", "Transit Provider", "Provider degree"),
        rows=rows,
    )


#: Paper Table II, verbatim: the qualitative comparison of IP-traceback
#: proposals.  Columns: approach, what it manipulates, cooperation needed,
#: router updates, overhead, identification precision, identification delay.
TABLE2_ROWS = (
    ("Manual", "Logs/monitoring", "Required", "No", "No", "Path prefix", "Long"),
    ("Flooding", "Packet loss", "Required", "No", "High", "Path prefix", "Moderate"),
    ("Marking", "IP ID field", "Deployment", "Yes", "Low", "Closest router", "~ sampling"),
    ("Out-of-band", "—", "Deployment", "Yes", "High", "Closest router", "~ sampling"),
    ("Digest-Based", "Local state at router", "Deployment", "Yes", "High", "Closest router", "Low"),
    ("Routing (this paper)", "Routes", "No", "No", "No", "AS", "Long"),
)


def table2() -> Table:
    """Summary of proposals for IP traceback (paper Table II)."""
    return Table(
        table_id="table2",
        title="Table II: Summary of proposals for IP traceback",
        headers=(
            "Approach",
            "Manipulates",
            "Cooperation from networks",
            "Router updates",
            "Overhead",
            "Identification precision",
            "Identification delay",
        ),
        rows=TABLE2_ROWS,
    )
