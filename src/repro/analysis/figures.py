"""One experiment runner per paper figure (Figures 3–10).

Every runner consumes a shared :class:`EvaluationRun` — the expensive
part, deploying the full announcement schedule once — and returns a
:class:`FigureResult` holding the same series the paper plots.  Absolute
numbers differ (synthetic Internet vs the real one); the *shape* targets
are listed in DESIGN.md §4 and checked by the benchmark suite.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Tuple

from ..bgp.announcement import AnnouncementConfig
from ..core.clustering import ClusterState
from ..core.configgen import (
    PHASE_LOCATIONS,
    PHASE_POISONING,
    PHASE_PREPENDING,
    ScheduleParams,
)
from ..core.engine import SimulationEngine
from ..core.localization import traffic_fraction_by_cluster_size
from ..core.pipeline import SpoofTracker, Testbed, build_testbed
from ..core.prediction import ComplianceStats, policy_compliance
from ..core.scheduler import (
    GreedyScheduler,
    mean_cluster_size_curve,
    percentile_curve,
    random_schedule_curves,
)
from ..spoof.sources import PLACEMENT_DISTRIBUTIONS, make_placement
from ..types import ASN, Catchment, LinkId
from .stats import ccdf_points, cdf_points, fraction_at_least, mean


@dataclass(frozen=True)
class Series:
    """One plotted line: a name and (x, y) points."""

    name: str
    points: Tuple[Tuple[float, float], ...]

    @classmethod
    def from_values(cls, name: str, values: Sequence[float]) -> "Series":
        """Build a series with x = 1, 2, … (configuration counts)."""
        return cls(
            name=name,
            points=tuple((float(i + 1), float(v)) for i, v in enumerate(values)),
        )


@dataclass
class FigureResult:
    """Data behind one reproduced figure."""

    figure_id: str
    title: str
    xlabel: str
    ylabel: str
    series: List[Series]
    notes: List[str] = field(default_factory=list)

    def series_named(self, name: str) -> Series:
        """Look up a series by name.

        Raises:
            KeyError: when absent.
        """
        for series in self.series:
            if series.name == name:
                return series
        raise KeyError(f"no series named {name!r} in {self.figure_id}")


class EvaluationRun:
    """Deploys the full schedule once and caches everything figures need.

    Attributes:
        testbed: the wired testbed.
        schedule: the deployed configurations, in order.
        universe: sources covered by the first (anycast-all) configuration.
        catchment_history: per-configuration ground-truth catchments,
            restricted to the universe.
        compliance: per-configuration policy-compliance statistics
            (Figure 9 input).
        distances: AS-hop distance of every AS from the origin.
    """

    def __init__(
        self,
        testbed: Optional[Testbed] = None,
        seed: int = 0,
        schedule_params: Optional[ScheduleParams] = None,
        max_configs: Optional[int] = None,
        compute_compliance: bool = True,
        measured: bool = False,
        engine: Optional[SimulationEngine] = None,
        workers: int = 1,
    ) -> None:
        """Deploy the schedule.

        With ``measured=True`` catchments come from the full §IV pipeline
        (BGP feeds + repaired traceroutes, conflict resolution, smax
        imputation) instead of the simulator's ground truth — matching
        how the paper actually produced its figures, at the cost of
        reduced coverage and much longer runtime.

        Simulations run through ``engine`` (built on demand from
        ``workers``), so deploying the same schedule twice — or sharing
        an engine between a run and a tracker — costs zero extra
        fixpoints.
        """
        self.testbed = testbed or build_testbed(seed=seed)
        self.engine = engine or SimulationEngine(
            self.testbed.simulator, workers=workers, spec=self.testbed.spec
        )
        tracker = SpoofTracker(self.testbed, schedule_params, engine=self.engine)
        limit = len(tracker.schedule) if max_configs is None else max_configs
        self.schedule: List[AnnouncementConfig] = tracker.schedule[:limit]
        graph = self.testbed.graph
        origin = self.testbed.origin
        self.distances: Dict[ASN, int] = graph.hop_distances([origin.asn])
        self.measured = measured

        self.catchment_history: List[Dict[LinkId, Catchment]] = []
        self.compliance: List[ComplianceStats] = []
        universe: Optional[FrozenSet[ASN]] = None
        outcomes = self.engine.simulate_many(self.schedule)
        if measured:
            from ..measurement.catchment import CatchmentHistory

            history: Optional[CatchmentHistory] = None
            for config, outcome in zip(self.schedule, outcomes):
                measurement = self.testbed.campaign.measure(outcome)
                if history is None:
                    universe = frozenset(measurement.assignment)
                    history = CatchmentHistory(universe)
                history.add(measurement.assignment)
                if compute_compliance:
                    self.compliance.append(
                        policy_compliance(
                            outcome, graph, self.testbed.policy, origin
                        )
                    )
            assert history is not None and universe is not None
            for assignment, config in zip(
                history.imputed_assignments(), self.schedule
            ):
                catchments: Dict[LinkId, set] = {
                    link: set() for link in sorted(config.announced)
                }
                for source, link in assignment.items():
                    catchments.setdefault(link, set()).add(source)
                self.catchment_history.append(
                    {
                        link: frozenset(members)
                        for link, members in catchments.items()
                    }
                )
        else:
            for config, outcome in zip(self.schedule, outcomes):
                if universe is None:
                    universe = outcome.covered_ases
                self.catchment_history.append(
                    {
                        link: frozenset(members & universe)
                        for link, members in outcome.catchments.items()
                    }
                )
                if compute_compliance:
                    self.compliance.append(
                        policy_compliance(
                            outcome, graph, self.testbed.policy, origin
                        )
                    )
        assert universe is not None
        self.universe: FrozenSet[ASN] = universe

    # ------------------------------------------------------------------

    def phase_boundaries(self) -> Dict[str, int]:
        """Number of configurations deployed by the end of each phase."""
        boundaries: Dict[str, int] = {}
        for index, config in enumerate(self.schedule):
            boundaries[config.phase] = index + 1
        return boundaries

    def final_clusters(
        self, history: Optional[Sequence[Mapping[LinkId, Catchment]]] = None
    ) -> List[FrozenSet[ASN]]:
        """Clusters after refining with the (given or full) history."""
        state = ClusterState(self.universe)
        for catchments in history if history is not None else self.catchment_history:
            state.refine_with_catchments(catchments)
        return state.clusters()

    def location_subset_history(
        self, remaining_links: Sequence[LinkId]
    ) -> List[Dict[LinkId, Catchment]]:
        """Locations+prepending catchments restricted to a link subset.

        Emulates a network owning only ``remaining_links`` by keeping the
        configurations that announce exclusively from those links — the
        paper's Figures 5 and 6 methodology.
        """
        subset = frozenset(remaining_links)
        return [
            catchments
            for config, catchments in zip(self.schedule, self.catchment_history)
            if config.phase in (PHASE_LOCATIONS, PHASE_PREPENDING)
            and config.announced <= subset
        ]


# ----------------------------------------------------------------------
# Figure 3 — CCDF of cluster sizes after each phase
# ----------------------------------------------------------------------

#: Legend strings, matching the paper's Figure 3.
PHASE_SERIES_NAMES = {
    PHASE_LOCATIONS: "Locations",
    PHASE_PREPENDING: "Locations and prepending",
    PHASE_POISONING: "Locations, prepending, and poisoning",
}


def figure3(run: EvaluationRun) -> FigureResult:
    """CCDF of cluster sizes at the end of each technique phase."""
    state = ClusterState(run.universe)
    series: List[Series] = []
    notes: List[str] = []
    previous_phase: Optional[str] = None
    for index, (config, catchments) in enumerate(
        zip(run.schedule, run.catchment_history)
    ):
        if previous_phase is not None and config.phase != previous_phase:
            series.append(
                Series(
                    PHASE_SERIES_NAMES.get(previous_phase, previous_phase),
                    tuple(ccdf_points(state.sizes())),
                )
            )
        state.refine_with_catchments(catchments)
        previous_phase = config.phase
    if previous_phase is not None:
        series.append(
            Series(
                PHASE_SERIES_NAMES.get(previous_phase, previous_phase),
                tuple(ccdf_points(state.sizes())),
            )
        )
    sizes = state.sizes()
    large = [size for size in sizes if size > 5]
    notes.append(f"final mean cluster size: {state.mean_size():.2f} ASes (paper: 1.40)")
    notes.append(
        f"singleton clusters: {state.singleton_fraction():.0%} (paper: 92%)"
    )
    notes.append(
        f"clusters larger than 5 ASes: {len(large)} holding "
        f"{sum(large) / len(run.universe):.1%} of ASes (paper: 14 / 7.9%)"
    )
    return FigureResult(
        figure_id="figure3",
        title="Distribution of cluster sizes after each phase",
        xlabel="Cluster Size [ASes]",
        ylabel="CCDF of Clusters",
        series=series,
        notes=notes,
    )


# ----------------------------------------------------------------------
# Figure 4 — cluster sizes vs number of configurations
# ----------------------------------------------------------------------


def figure4(run: EvaluationRun) -> FigureResult:
    """Mean and 90th-percentile cluster size after each configuration."""
    state = ClusterState(run.universe)
    means: List[float] = []
    p90s: List[float] = []
    for catchments in run.catchment_history:
        state.refine_with_catchments(catchments)
        means.append(state.mean_size())
        p90s.append(state.size_percentile(90.0))
    boundaries = run.phase_boundaries()
    notes = [
        f"end of {phase} phase at configuration {boundary}"
        for phase, boundary in sorted(boundaries.items(), key=lambda kv: kv[1])
    ]
    return FigureResult(
        figure_id="figure4",
        title="Cluster sizes as function of number of configurations",
        xlabel="Number of Configurations",
        ylabel="Cluster Size [ASes]",
        series=[
            Series.from_values("Mean Cluster Size", means),
            Series.from_values("90th Percentile", p90s),
        ],
        notes=notes,
    )


# ----------------------------------------------------------------------
# Figures 5 and 6 — impact of the peering footprint
# ----------------------------------------------------------------------


def _footprint_scenarios(
    run: EvaluationRun, drop_counts: Sequence[int], max_subsets: Optional[int]
) -> Dict[str, List[List[Dict[LinkId, Catchment]]]]:
    """Per scenario name, the restricted histories of every link subset."""
    links = run.testbed.origin.link_ids
    scenarios: Dict[str, List[List[Dict[LinkId, Catchment]]]] = {}
    for dropped in drop_counts:
        remaining_size = len(links) - dropped
        if remaining_size < 2:
            continue
        name = _scenario_name(remaining_size, len(links))
        histories = []
        for subset in itertools.combinations(sorted(links), remaining_size):
            histories.append(run.location_subset_history(subset))
            if max_subsets is not None and len(histories) >= max_subsets:
                break
        scenarios[name] = histories
    return scenarios


def _scenario_name(remaining: int, total: int) -> str:
    if remaining == total:
        return "All locations"
    words = {5: "Five", 6: "Six", 4: "Four", 3: "Three", 2: "Two"}
    return f"{words.get(remaining, str(remaining))} locations"


def figure5(
    run: EvaluationRun,
    drop_counts: Sequence[int] = (0, 1, 2),
    max_subsets: Optional[int] = None,
) -> FigureResult:
    """Mean cluster size vs configurations when discarding peering links.

    For each scenario (all links, one dropped, two dropped) the mean curve
    is averaged across link subsets; min/max envelope curves reproduce the
    paper's shaded bands.
    """
    scenarios = _footprint_scenarios(run, drop_counts, max_subsets)
    series: List[Series] = []
    notes: List[str] = []
    for name, histories in scenarios.items():
        curves = [
            mean_cluster_size_curve(sorted(run.universe), history)
            for history in histories
            if history
        ]
        if not curves:
            continue
        length = min(len(curve) for curve in curves)
        trimmed = [curve[:length] for curve in curves]
        avg = [mean([curve[i] for curve in trimmed]) for i in range(length)]
        series.append(Series.from_values(name, avg))
        if len(trimmed) > 1:
            series.append(
                Series.from_values(
                    f"{name} (min)",
                    [min(curve[i] for curve in trimmed) for i in range(length)],
                )
            )
            series.append(
                Series.from_values(
                    f"{name} (max)",
                    [max(curve[i] for curve in trimmed) for i in range(length)],
                )
            )
        notes.append(
            f"{name}: {length} configurations, final mean {avg[-1]:.2f} ASes"
        )
    return FigureResult(
        figure_id="figure5",
        title="Mean cluster size when removing peering locations",
        xlabel="Number of Configurations",
        ylabel="Mean Cluster Size [ASes]",
        series=series,
        notes=notes,
    )


def figure6(
    run: EvaluationRun,
    drop_counts: Sequence[int] = (0, 1, 2),
    max_subsets: Optional[int] = None,
) -> FigureResult:
    """CCDF of final cluster sizes when discarding peering links.

    Cluster sizes are pooled across link subsets of each scenario (the
    paper plots a representative line plus a min/max band).
    """
    scenarios = _footprint_scenarios(run, drop_counts, max_subsets)
    series: List[Series] = []
    notes: List[str] = []
    for name, histories in scenarios.items():
        pooled: List[int] = []
        for history in histories:
            if not history:
                continue
            clusters = run.final_clusters(history)
            pooled.extend(len(cluster) for cluster in clusters)
        if not pooled:
            continue
        series.append(Series(name, tuple(ccdf_points(pooled))))
        notes.append(
            f"{name}: {fraction_at_least(pooled, 26):.2%} of clusters "
            f"with more than 25 ASes (paper: 0.1% / 1.27% / 4.29%)"
        )
    return FigureResult(
        figure_id="figure6",
        title="Distribution of cluster size after removing locations",
        xlabel="Cluster Size [ASes]",
        ylabel="CCDF of Clusters",
        series=series,
        notes=notes,
    )


# ----------------------------------------------------------------------
# Figure 7 — cluster size vs AS-hop distance from the origin
# ----------------------------------------------------------------------


def figure7(run: EvaluationRun, max_size: int = 25) -> FigureResult:
    """Cumulative fraction of ASes vs cluster size, by distance group."""
    clusters = run.final_clusters()
    cluster_size_of: Dict[ASN, int] = {}
    for cluster in clusters:
        for asn in cluster:
            cluster_size_of[asn] = len(cluster)
    groups: Dict[str, List[int]] = {
        "ASes 1 hop from origin": [],
        "ASes 2 hops from origin": [],
        "ASes 3 hops from origin": [],
        "ASes 4+ hops from origin": [],
    }
    group_means: Dict[str, float] = {}
    for asn in run.universe:
        distance = run.distances.get(asn)
        size = cluster_size_of.get(asn)
        if distance is None or size is None:
            continue
        if distance <= 1:
            groups["ASes 1 hop from origin"].append(size)
        elif distance == 2:
            groups["ASes 2 hops from origin"].append(size)
        elif distance == 3:
            groups["ASes 3 hops from origin"].append(size)
        else:
            groups["ASes 4+ hops from origin"].append(size)
    series: List[Series] = []
    notes: List[str] = []
    for name, sizes in groups.items():
        if not sizes:
            continue
        points = []
        total = len(sizes)
        for size in range(1, max_size + 1):
            points.append(
                (float(size), sum(1 for s in sizes if s <= size) / total)
            )
        series.append(Series(name, tuple(points)))
        group_means[name] = mean([float(s) for s in sizes])
        notes.append(f"{name}: {total} ASes, mean cluster size {group_means[name]:.2f}")
    near = [groups["ASes 1 hop from origin"], groups["ASes 2 hops from origin"]]
    far = [groups["ASes 3 hops from origin"], groups["ASes 4+ hops from origin"]]
    near_sizes = [s for group in near for s in group]
    far_sizes = [s for group in far for s in group]
    if near_sizes and far_sizes:
        notes.append(
            f"1–2 hops mean {mean([float(s) for s in near_sizes]):.2f} vs "
            f"3+ hops mean {mean([float(s) for s in far_sizes]):.2f} "
            f"(paper: 1.85 vs 2.64)"
        )
    return FigureResult(
        figure_id="figure7",
        title="Cluster size as function of AS-hop distance from origin AS",
        xlabel="Cluster Size",
        ylabel="Cumulative Fraction of ASes",
        series=series,
        notes=notes,
    )


# ----------------------------------------------------------------------
# Figure 8 — announcement scheduling
# ----------------------------------------------------------------------


def figure8(
    run: EvaluationRun,
    num_random_sequences: int = 100,
    max_steps: int = 40,
    seed: int = 0,
) -> FigureResult:
    """Random vs greedy (iterative-algorithm) deployment schedules."""
    universe = sorted(run.universe)
    random_curves = random_schedule_curves(
        universe,
        run.catchment_history,
        num_sequences=num_random_sequences,
        seed=seed,
        max_steps=max_steps,
    )
    p25 = percentile_curve(random_curves, 25.0)
    p50 = percentile_curve(random_curves, 50.0)
    p75 = percentile_curve(random_curves, 75.0)
    scheduler = GreedyScheduler(universe, run.catchment_history)
    _, greedy_curve = scheduler.run(max_steps=max_steps)
    notes = []
    checkpoint = min(10, len(p50), len(greedy_curve))
    if checkpoint:
        notes.append(
            f"after {checkpoint} configurations: random median "
            f"{p50[checkpoint - 1]:.1f} vs greedy {greedy_curve[checkpoint - 1]:.1f} "
            f"ASes (paper: 7.8 vs 3.5 at 10)"
        )
    return FigureResult(
        figure_id="figure8",
        title="Mean cluster size as function of announcement schedule",
        xlabel="Number of Configurations",
        ylabel="Mean Cluster Size [ASes]",
        series=[
            Series.from_values("25th Percentile", p25),
            Series.from_values("Random (median of means)", p50),
            Series.from_values("75th Percentile", p75),
            Series.from_values("Iterative Algorithm", greedy_curve),
        ],
        notes=notes,
    )


# ----------------------------------------------------------------------
# Figure 9 — routing-policy compliance
# ----------------------------------------------------------------------


def figure9(run: EvaluationRun) -> FigureResult:
    """CDF over configurations of the fraction of policy-compliant ASes."""
    if not run.compliance:
        raise ValueError("evaluation run was built with compute_compliance=False")
    best_rel = [stats.best_relationship for stats in run.compliance]
    both = [stats.best_relationship_and_shortest for stats in run.compliance]
    notes = [
        f"median fraction following best relationship: {sorted(best_rel)[len(best_rel) // 2]:.2%}",
        f"median fraction following Gao-Rexford (both): {sorted(both)[len(both) // 2]:.2%}",
    ]
    return FigureResult(
        figure_id="figure9",
        title="Percentage of ASes following well-known routing policies",
        xlabel="Percentage of ASes",
        ylabel="Cumulative Fraction of Configurations",
        series=[
            Series("Best Relationship & Shortest", tuple(cdf_points(both))),
            Series("Best Relationship", tuple(cdf_points(best_rel))),
        ],
        notes=notes,
    )


# ----------------------------------------------------------------------
# Figure 10 — spoofed traffic vs cluster size
# ----------------------------------------------------------------------

#: Legend strings, matching the paper's Figure 10.
DISTRIBUTION_SERIES_NAMES = {
    "uniform": "Uniform Distribution",
    "pareto": "Pareto Distribution",
    "single": "Single Source",
}


def figure10(
    run: EvaluationRun,
    num_placements: int = 200,
    num_sources: int = 50,
    max_size: int = 16,
    seed: int = 0,
) -> FigureResult:
    """Cumulative spoofed-traffic fraction vs cluster size per distribution.

    For each distribution the curve is averaged over ``num_placements``
    random placements (the paper uses 1,000).
    """
    clusters = run.final_clusters()
    universe = sorted(run.universe)
    series: List[Series] = []
    notes: List[str] = []
    for distribution in PLACEMENT_DISTRIBUTIONS:
        rng = random.Random(f"{seed}|{distribution}")
        totals = [0.0] * max_size
        for _ in range(num_placements):
            placement = make_placement(distribution, universe, num_sources, rng)
            fractions = traffic_fraction_by_cluster_size(
                placement, clusters, max_size=max_size
            )
            for index in range(max_size):
                totals[index] += fractions.get(index + 1, 0.0)
        averaged = [value / num_placements for value in totals]
        series.append(
            Series(
                DISTRIBUTION_SERIES_NAMES[distribution],
                tuple((float(i + 1), value) for i, value in enumerate(averaged)),
            )
        )
        notes.append(
            f"{DISTRIBUTION_SERIES_NAMES[distribution]}: "
            f"{averaged[0]:.0%} of traffic in singleton clusters, "
            f"{averaged[min(4, max_size - 1)]:.0%} in clusters of ≤5 ASes"
        )
    return FigureResult(
        figure_id="figure10",
        title="Distribution of cluster size as function of traffic volume",
        xlabel="Cluster Size [ASes]",
        ylabel="Cumulative Fraction of Traffic Volume",
        series=series,
        notes=notes,
    )


#: Registry used by the CLI and benchmark harness.
FIGURE_RUNNERS = {
    "figure3": figure3,
    "figure4": figure4,
    "figure5": figure5,
    "figure6": figure6,
    "figure7": figure7,
    "figure8": figure8,
    "figure9": figure9,
    "figure10": figure10,
}
