"""Rendering for the multi-tenant fleet runtime (``repro.fleet``).

``spooftrack fleet`` prints a rolling per-tenant attribution table while
the campaign runs and a final fleet summary when it finishes; both are
assembled here from :class:`~repro.fleet.shard.ShardReport` values so
the renderers are pure data-in/text-out like the rest of
:mod:`repro.analysis`.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from ..fleet.runtime import FleetReport
from ..fleet.shard import ShardReport

_HEADER = (
    f"{'tenant':<10} {'prefix':<16} {'state':<9} {'win':>4} {'t(min)':>8} "
    f"{'clus':>5} {'H(bits)':>8} {'top cluster':<22} {'c/r':>5}"
)


def render_shard_row(report: ShardReport) -> str:
    """One table row for a shard's current (or final) state."""
    top = ",".join(str(asn) for asn in report.top_cluster[:4])
    if len(report.top_cluster) > 4:
        top += ",…"
    return (
        f"{report.tenant:<10.10} {report.prefix:<16.16} {report.state:<9.9} "
        f"{report.windows:>4} {report.clock_minutes:>8.1f} "
        f"{report.num_clusters:>5} {report.entropy_bits:>8.3f} "
        f"{top:<22.22} {report.crashes}/{report.resumes:>3}"
    )


def render_fleet_table(reports: Sequence[ShardReport]) -> str:
    """The per-tenant attribution table (one row per shard)."""
    lines = [_HEADER]
    for report in sorted(reports, key=lambda r: r.key):
        lines.append(render_shard_row(report))
    return "\n".join(lines)


def render_fleet_summary(report: FleetReport) -> str:
    """End-of-campaign rollup: states, tenants, scheduler fairness."""
    states: Mapping[str, int] = {}
    for shard in report.shards:
        states[shard.state] = states.get(shard.state, 0) + 1  # type: ignore[index]
    state_text = ", ".join(
        f"{count} {state}" for state, count in sorted(states.items())
    )
    by_tenant = report.by_tenant()
    debt = report.scheduler.get("debt", {})
    tenant_lines = []
    for tenant in sorted(by_tenant):
        shards = by_tenant[tenant]
        windows = sum(s.windows for s in shards)
        tenant_lines.append(
            f"  {tenant}: {len(shards)} attacks · {windows} windows · "
            f"debt {debt.get(tenant, 0.0):g}"
        )
    lines = [
        f"fleet: {len(report.shards)} shards ({state_text}) · "
        f"{report.scheduler.get('dispatches', 0)} dispatches · "
        f"{report.events_applied} events applied"
        + (f" · {report.events_missed} missed" if report.events_missed else "")
        + (
            f" · {report.crashes} crashes / {report.resumes} resumes"
            if report.crashes or report.resumes
            else ""
        ),
        *tenant_lines,
        f"fleet digest: {report.digest}",
    ]
    return "\n".join(lines)
