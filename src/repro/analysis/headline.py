"""Headline metrics: the paper's quotable numbers from one evaluation run.

Collects every scalar the paper reports in prose — final mean cluster
size (1.40), singleton share (92%), the >5-AS tail (14 clusters / 7.9% of
ASes), footprint budgets (358/118/31), near-vs-far means (1.85/2.64),
random-vs-greedy at ten configurations (7.8/3.5) — next to this
reproduction's values, for EXPERIMENTS.md and the ``spooftrack headline``
command.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..core.clustering import ClusterState
from ..core.scheduler import GreedyScheduler, percentile_curve, random_schedule_curves
from .figures import EvaluationRun
from .stats import mean


@dataclass(frozen=True)
class HeadlineMetric:
    """One paper-vs-reproduction scalar."""

    name: str
    paper: str
    measured: str


def headline_metrics(
    run: EvaluationRun,
    num_random_sequences: int = 60,
    schedule_horizon: int = 10,
    seed: int = 0,
) -> List[HeadlineMetric]:
    """Compute the headline comparison for one evaluation run."""
    state = ClusterState(run.universe)
    for catchments in run.catchment_history:
        state.refine_with_catchments(catchments)
    sizes = state.sizes()
    large = [size for size in sizes if size > 5]

    metrics: List[HeadlineMetric] = [
        HeadlineMetric(
            "configurations deployed",
            "705 (64+294+347)",
            str(len(run.schedule)),
        ),
        HeadlineMetric(
            "sources analyzed", "1,885 ASes", f"{len(run.universe)} ASes"
        ),
        HeadlineMetric(
            "final mean cluster size", "1.40 ASes", f"{state.mean_size():.2f} ASes"
        ),
        HeadlineMetric(
            "singleton clusters", "92%", f"{state.singleton_fraction():.0%}"
        ),
        HeadlineMetric(
            "clusters >5 ASes / ASes therein",
            "14 / 7.9%",
            f"{len(large)} / {sum(large) / len(run.universe):.1%}",
        ),
    ]

    # Near vs far (Figure 7).
    size_of = {asn: len(c) for c in state.clusters() for asn in c}
    near, far = [], []
    for asn in run.universe:
        distance = run.distances.get(asn)
        if distance is None or asn not in size_of:
            continue
        (near if distance <= 2 else far).append(float(size_of[asn]))
    if near and far:
        metrics.append(
            HeadlineMetric(
                "mean cluster size, 1–2 vs 3+ hops",
                "1.85 vs 2.64",
                f"{mean(near):.2f} vs {mean(far):.2f}",
            )
        )

    # Random vs greedy at the horizon (Figure 8).
    universe = sorted(run.universe)
    horizon = min(schedule_horizon, len(run.catchment_history))
    curves = random_schedule_curves(
        universe,
        run.catchment_history,
        num_sequences=num_random_sequences,
        seed=seed,
        max_steps=horizon,
    )
    median = percentile_curve(curves, 50.0)
    _, greedy = GreedyScheduler(universe, run.catchment_history).run(
        max_steps=horizon
    )
    if median and greedy:
        step = min(horizon, len(median), len(greedy)) - 1
        metrics.append(
            HeadlineMetric(
                f"random vs greedy at {step + 1} configs",
                "7.8 vs 3.5",
                f"{median[step]:.1f} vs {greedy[step]:.1f}",
            )
        )
    return metrics


def render_headline(metrics: List[HeadlineMetric]) -> str:
    """Aligned text table of the comparison."""
    name_width = max(len(metric.name) for metric in metrics)
    paper_width = max(len(metric.paper) for metric in metrics)
    lines = [
        f"{'result':<{name_width}}  {'paper':<{paper_width}}  reproduction",
        f"{'-' * name_width}  {'-' * paper_width}  {'-' * 12}",
    ]
    for metric in metrics:
        lines.append(
            f"{metric.name:<{name_width}}  {metric.paper:<{paper_width}}  "
            f"{metric.measured}"
        )
    return "\n".join(lines)
