"""ASCII live dashboard over the observability event stream.

``spooftrack dash`` renders this: a terminal view of an attribution run
assembled purely from :class:`~repro.obs.bus.EventBus` events (live over
SSE, or replayed from a seeded run), so it works against a local run and
against a remote ``--serve`` endpoint alike.  The charts reuse
:func:`~repro.analysis.ascii_plot.plot_series` — entropy and cluster
count per window are exactly the curves an operator aborts or extends a
live traceback on (BGPeek-a-Boo's in-flight monitoring argument).
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional

from .ascii_plot import PlotOptions, plot_series
from .figures import Series

#: Default plot raster (narrower than the figure default: two charts
#: must fit a standard terminal alongside their axis gutters).
DASH_PLOT = PlotOptions(width=56, height=10)


class Dashboard:
    """Accumulates bus events and renders a terminal dashboard.

    Feed events (dicts with at least ``kind``) through :meth:`ingest`;
    :meth:`render` returns the current full-screen text.  The dashboard
    is pure state-in/text-out — no threads, no I/O — so it is trivially
    testable and deterministic given a deterministic event sequence.

    Args:
        plot_options: chart raster (default fits a standard terminal).
        tenant: only fold in events carrying this ``tenant`` tag (fleet
            streams tag every shard event; see
            :class:`~repro.fleet.obs.TaggedBus`).  Untagged events are
            dropped too — a fleet's merged stream interleaves tenants,
            so an unfiltered accumulator would mix their windows.
    """

    def __init__(
        self,
        plot_options: Optional[PlotOptions] = None,
        tenant: str = "",
    ) -> None:
        self.plot_options = plot_options or DASH_PLOT
        self.tenant = tenant
        self.events_filtered = 0
        self.windows: List[Mapping] = []
        self.phases: List[Mapping] = []
        self.faults: Dict[str, int] = {}
        self.flights: Dict[str, int] = {}
        self.last_flight: Optional[Mapping] = None
        self.churn_events = 0
        self.remeasurements = 0
        self.checkpoints = 0
        self.selects: List[Mapping] = []
        self.engine: Dict[str, float] = {}
        self.pipeline: Optional[Mapping] = None
        self.report: Optional[Mapping] = None
        self.events_seen = 0

    # -- ingestion ------------------------------------------------------

    def ingest(self, event: Mapping) -> None:
        """Fold one bus event into the dashboard state."""
        if self.tenant and str(event.get("tenant", "")) != self.tenant:
            self.events_filtered += 1
            return
        self.events_seen += 1
        kind = event.get("kind")
        if kind == "window":
            self.windows.append(event)
        elif kind == "phase":
            self.phases.append(event)
        elif kind == "fault":
            name = str(event.get("fault_kind", "unknown"))
            self.faults[name] = self.faults.get(name, 0) + int(
                event.get("count", 1)
            )
        elif kind == "flight":
            reason = str(event.get("reason", "unknown"))
            self.flights[reason] = self.flights.get(reason, 0) + 1
            self.last_flight = event
        elif kind == "churn":
            self.churn_events += 1
            if event.get("remeasured"):
                self.remeasurements += 1
        elif kind == "checkpoint":
            self.checkpoints += 1
        elif kind == "select":
            self.selects.append(event)
        elif kind == "engine_batch":
            for key, value in event.items():
                if isinstance(value, (int, float)) and key not in ("seq",):
                    self.engine[key] = self.engine.get(key, 0) + value
        elif kind == "pipeline":
            self.pipeline = event
        elif kind == "report":
            self.report = event

    # -- rendering ------------------------------------------------------

    def _series(self, field: str, name: str) -> Optional[Series]:
        points = [
            (float(w.get("window_index", i)), float(w[field]))
            for i, w in enumerate(self.windows)
            if field in w
        ]
        if not points:
            return None
        return Series(name=name, points=tuple(points))

    def _header_lines(self) -> List[str]:
        lines = [f"events {self.events_seen}"]
        if self.tenant:
            lines[-1] += (
                f" · tenant {self.tenant}"
                f" ({self.events_filtered} foreign filtered)"
            )
        if self.windows:
            latest = self.windows[-1]
            lines[-1] += (
                f" · window {latest.get('window_index')}"
                f" · clusters {latest.get('num_clusters')}"
                f" · entropy {float(latest.get('entropy', 0.0)):.3f} bits"
            )
            offered = float(latest.get("offered_volume", 0.0) or 0.0)
            dropped = float(latest.get("dropped_volume", 0.0) or 0.0)
            if offered > 0:
                lines.append(
                    f"ingest: offered {offered:g} · dropped {dropped:g} "
                    f"({dropped / offered:.1%})"
                )
        if self.selects:
            latest = self.selects[-1]
            lines.append(
                f"controller: config #{latest.get('schedule_index')} "
                f"({latest.get('phase')}) · "
                f"{latest.get('configs_consumed')} consumed"
            )
        if self.engine:
            lines.append(
                "engine: "
                f"{int(self.engine.get('configs_simulated', 0))} simulated · "
                f"{int(self.engine.get('cache_hits', 0))} cache hits · "
                f"{int(self.engine.get('worker_failures', 0))} worker failures"
            )
        if self.faults:
            fired = ", ".join(
                f"{kind}×{count}" for kind, count in sorted(self.faults.items())
            )
            lines.append(f"faults: {fired}")
        if self.flights:
            dumped = ", ".join(
                f"{reason}×{count}"
                for reason, count in sorted(self.flights.items())
            )
            line = f"flight dumps: {dumped}"
            if self.last_flight is not None:
                line += (
                    f" · last: {self.last_flight.get('flight')}"
                    f" #{self.last_flight.get('ordinal')}"
                    f" ({self.last_flight.get('reason')})"
                )
            lines.append(line)
        if self.churn_events:
            lines.append(
                f"churn: {self.churn_events} strikes · "
                f"{self.remeasurements} remeasurements · "
                f"{self.checkpoints} checkpoints"
            )
        if self.pipeline is not None:
            lines.append(
                f"pipeline: {self.pipeline.get('steps')} steps · "
                f"{self.pipeline.get('clusters')} clusters · "
                f"{self.pipeline.get('degraded_steps')} degraded"
            )
        return lines

    def render(self) -> str:
        """The full dashboard as text (header, then charts when data allows)."""
        lines = ["spooftrack dash", "=" * 15]
        lines.extend(self._header_lines())
        entropy = self._series("entropy", "entropy (bits)")
        clusters = self._series("num_clusters", "clusters")
        for series in (entropy, clusters):
            if series is None or len(series.points) < 2:
                continue
            lines.append("")
            lines.append(series.name + " by window")
            lines.append(plot_series([series], self.plot_options))
        if self.report is not None:
            lines.append("")
            lines.append("final: " + str(self.report.get("summary", "done")))
        return "\n".join(lines)
