"""Evaluation analysis: statistics, figure runners, tables, reporting."""

from .figures import (
    DISTRIBUTION_SERIES_NAMES,
    FIGURE_RUNNERS,
    PHASE_SERIES_NAMES,
    EvaluationRun,
    FigureResult,
    Series,
    figure3,
    figure4,
    figure5,
    figure6,
    figure7,
    figure8,
    figure9,
    figure10,
)
from .ascii_plot import PlotOptions, plot_figure, plot_series
from .headline import HeadlineMetric, headline_metrics, render_headline
from .live import live_markdown, render_window, render_window_table
from .report import figure_markdown, render_figure, render_series
from .stats import (
    ccdf_points,
    cdf_points,
    fraction_at_least,
    mean,
    percentile,
    summarize_sizes,
)
from .tables import TABLE2_ROWS, Table, table1, table2

__all__ = [
    "EvaluationRun",
    "FigureResult",
    "Series",
    "FIGURE_RUNNERS",
    "PHASE_SERIES_NAMES",
    "DISTRIBUTION_SERIES_NAMES",
    "figure3",
    "figure4",
    "figure5",
    "figure6",
    "figure7",
    "figure8",
    "figure9",
    "figure10",
    "render_figure",
    "render_series",
    "figure_markdown",
    "plot_figure",
    "plot_series",
    "PlotOptions",
    "HeadlineMetric",
    "headline_metrics",
    "render_headline",
    "render_window",
    "render_window_table",
    "live_markdown",
    "Table",
    "table1",
    "table2",
    "TABLE2_ROWS",
    "ccdf_points",
    "cdf_points",
    "percentile",
    "mean",
    "fraction_at_least",
    "summarize_sizes",
]
