"""Small statistics helpers shared by the figure runners."""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple


def ccdf_points(values: Sequence[int]) -> List[Tuple[float, float]]:
    """Complementary CDF: (x, fraction of values ≥ x) at each distinct x.

    Matches the paper's cluster-size CCDF axes (Figures 3 and 6): the
    point at x = 1 is always 1.0 and the last point covers the maximum.
    """
    if not values:
        raise ValueError("cannot compute CCDF of no values")
    ordered = sorted(values)
    total = len(ordered)
    points: List[Tuple[float, float]] = []
    index = 0
    for value in sorted(set(ordered)):
        # Count of values >= value: total minus those strictly below.
        while index < total and ordered[index] < value:
            index += 1
        points.append((float(value), (total - index) / total))
    return points


def cdf_points(values: Sequence[float]) -> List[Tuple[float, float]]:
    """CDF: (x, fraction of values ≤ x) at each distinct x."""
    if not values:
        raise ValueError("cannot compute CDF of no values")
    ordered = sorted(values)
    total = len(ordered)
    points: List[Tuple[float, float]] = []
    count = 0
    for value in sorted(set(ordered)):
        while count < total and ordered[count] <= value:
            count += 1
        points.append((float(value), count / total))
    return points


def percentile(values: Sequence[float], pct: float) -> float:
    """Linear-interpolation percentile in [0, 100]."""
    if not values:
        raise ValueError("cannot compute percentile of no values")
    if not 0.0 <= pct <= 100.0:
        raise ValueError("percentile must be in [0, 100]")
    ordered = sorted(values)
    if len(ordered) == 1:
        return float(ordered[0])
    rank = (pct / 100.0) * (len(ordered) - 1)
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    if ordered[low] == ordered[high]:
        return float(ordered[low])
    fraction = rank - low
    return ordered[low] * (1.0 - fraction) + ordered[high] * fraction


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean."""
    if not values:
        raise ValueError("cannot compute mean of no values")
    return sum(values) / len(values)


def fraction_at_least(values: Sequence[int], threshold: int) -> float:
    """Fraction of values ≥ threshold."""
    if not values:
        raise ValueError("no values")
    return sum(1 for value in values if value >= threshold) / len(values)


def summarize_sizes(sizes: Sequence[int]) -> Dict[str, float]:
    """Summary used in experiment logs: mean, p90, max, singleton share."""
    return {
        "count": float(len(sizes)),
        "mean": mean([float(s) for s in sizes]),
        "p90": percentile([float(s) for s in sizes], 90.0),
        "max": float(max(sizes)),
        "singleton_fraction": sum(1 for s in sizes if s == 1) / len(sizes),
    }
