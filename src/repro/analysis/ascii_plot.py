"""Terminal plotting for figure results.

The paper's figures are log-log CCDFs and step curves; rendering them as
character rasters makes `spooftrack figures --plot` self-contained (no
matplotlib offline).  The plotter supports linear and log axes, multiple
series (one glyph each), and axis tick labels.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from .figures import FigureResult, Series

#: Glyphs assigned to series, in order.
SERIES_GLYPHS = "ox+*#@%&"


@dataclass(frozen=True)
class PlotOptions:
    """Rendering options for :func:`plot_figure`.

    Attributes:
        width / height: raster size in characters (plot area).
        log_x / log_y: logarithmic axes (requires positive data).
    """

    width: int = 64
    height: int = 18
    log_x: bool = False
    log_y: bool = False

    def __post_init__(self) -> None:
        if self.width < 8 or self.height < 4:
            raise ValueError("plot area too small")


def _transform(value: float, log: bool) -> float:
    if not log:
        return value
    if value <= 0:
        raise ValueError(f"log axis requires positive values, got {value}")
    return math.log10(value)


def _axis_range(values: Sequence[float]) -> Tuple[float, float]:
    low, high = min(values), max(values)
    if low == high:
        pad = abs(low) * 0.5 or 0.5
        return low - pad, high + pad
    return low, high


def plot_series(
    series_list: Sequence[Series], options: Optional[PlotOptions] = None
) -> str:
    """Render series onto a character raster with axes.

    Raises:
        ValueError: with no series, empty series, or non-positive data on
            a log axis.
    """
    options = options or PlotOptions()
    if not series_list:
        raise ValueError("nothing to plot")
    xs: List[float] = []
    ys: List[float] = []
    for series in series_list:
        if not series.points:
            raise ValueError(f"series {series.name!r} has no points")
        for x, y in series.points:
            xs.append(_transform(x, options.log_x))
            ys.append(_transform(y, options.log_y))
    x_low, x_high = _axis_range(xs)
    y_low, y_high = _axis_range(ys)

    grid = [[" "] * options.width for _ in range(options.height)]

    def place(x: float, y: float, glyph: str) -> None:
        col = round((x - x_low) / (x_high - x_low) * (options.width - 1))
        row = round((y - y_low) / (y_high - y_low) * (options.height - 1))
        grid[options.height - 1 - row][col] = glyph

    for index, series in enumerate(series_list):
        glyph = SERIES_GLYPHS[index % len(SERIES_GLYPHS)]
        for x, y in series.points:
            place(
                _transform(x, options.log_x),
                _transform(y, options.log_y),
                glyph,
            )

    def tick(value: float, log: bool) -> str:
        real = 10**value if log else value
        if abs(real) >= 1000 or (0 < abs(real) < 0.01):
            return f"{real:.1e}"
        return f"{real:.2f}".rstrip("0").rstrip(".")

    lines: List[str] = []
    top_label = tick(y_high, options.log_y)
    bottom_label = tick(y_low, options.log_y)
    label_width = max(len(top_label), len(bottom_label))
    for row_index, row in enumerate(grid):
        if row_index == 0:
            label = top_label
        elif row_index == options.height - 1:
            label = bottom_label
        else:
            label = ""
        lines.append(f"{label:>{label_width}} |{''.join(row)}")
    lines.append(f"{'':>{label_width}} +{'-' * options.width}")
    left = tick(x_low, options.log_x)
    right = tick(x_high, options.log_x)
    gap = options.width - len(left) - len(right)
    lines.append(f"{'':>{label_width}}  {left}{' ' * max(1, gap)}{right}")

    legend = "   ".join(
        f"{SERIES_GLYPHS[index % len(SERIES_GLYPHS)]} {series.name}"
        for index, series in enumerate(series_list)
    )
    lines.append(f"{'':>{label_width}}  {legend}")
    return "\n".join(lines)


#: Per-figure default axis scales, mirroring the paper's plots.
FIGURE_AXES = {
    "figure3": PlotOptions(log_x=True, log_y=True),
    "figure4": PlotOptions(log_x=True, log_y=True),
    "figure5": PlotOptions(log_x=True, log_y=True),
    "figure6": PlotOptions(log_x=True, log_y=True),
    "figure7": PlotOptions(),
    "figure8": PlotOptions(log_x=True, log_y=True),
    "figure9": PlotOptions(),
    "figure10": PlotOptions(),
}


def plot_figure(result: FigureResult, options: Optional[PlotOptions] = None) -> str:
    """Render a figure result with its paper-matching axes.

    Series whose data violates a log axis (zero fractions on CCDF tails
    are filtered point-wise rather than failing the whole plot).
    """
    options = options or FIGURE_AXES.get(result.figure_id, PlotOptions())
    usable: List[Series] = []
    for series in result.series:
        points = tuple(
            (x, y)
            for x, y in series.points
            if (not options.log_x or x > 0) and (not options.log_y or y > 0)
        )
        if points:
            usable.append(Series(series.name, points))
    header = f"{result.title}  [{result.xlabel} vs {result.ylabel}]"
    return header + "\n" + plot_series(usable, options)
