"""Announcement scheduling for fast localization (paper §V-C, Figure 8).

When catchments have been measured ahead of an attack, the origin can
deploy configurations in an order that shrinks clusters as fast as
possible.  The paper compares:

* **random order** — configurations deployed in a random sequence (the
  shaded baseline of Figure 8, over 30,000 sequences), and
* **the iterative algorithm** — greedily deploy the configuration that
  minimizes the resulting mean cluster size at each step (the dashed
  line; 3.5 vs 7.8 mean ASes after ten configurations in the paper).

Both operate on pre-measured per-configuration catchment maps, so
"deploying" a configuration here is just a cluster refinement.

The volume-aware variant (paper §VIII future work) weights each cluster
by its estimated share of spoofed traffic, prioritizing splits of the
clusters that matter during an attack.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Callable,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from ..errors import SchedulingError
from ..types import ASN, Catchment, LinkId
from .clustering import ClusterState

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from ..bgp.announcement import AnnouncementConfig
    from ..strategy import TracebackStrategy
    from .engine import SimulationEngine


def measured_catchment_history(
    engine: "SimulationEngine",
    configs: Iterable["AnnouncementConfig"],
    universe: Optional[Iterable[ASN]] = None,
) -> Tuple[List[ASN], List[Mapping[LinkId, Catchment]]]:
    """Pre-measure per-configuration catchments through an engine.

    The §V-C schedulers operate on pre-measured catchment maps; this is
    the measuring step, routed through the (cached, possibly parallel)
    :class:`~repro.core.engine.SimulationEngine` so configurations the
    pipeline already deployed are never simulated again.

    Args:
        engine: simulation engine over the testbed.
        configs: configurations to measure.
        universe: sources to restrict catchments to; defaults to the
            coverage of the first configuration (the paper's §IV-d rule).

    Returns:
        ``(universe, catchment_history)`` ready for
        :class:`GreedyScheduler` and friends.
    """
    config_list = list(configs)
    if not config_list:
        raise SchedulingError("no configurations to measure")
    outcomes = engine.simulate_many(config_list)
    members = (
        frozenset(universe) if universe is not None else outcomes[0].covered_ases
    )
    history: List[Mapping[LinkId, Catchment]] = [
        {
            link: frozenset(catchment & members)
            for link, catchment in outcome.catchments.items()
        }
        for outcome in outcomes
    ]
    return sorted(members), history


def refinement_gain(
    state: ClusterState, catchments: Iterable[Iterable[ASN]]
) -> int:
    """Splits that refining ``state`` with ``catchments`` would produce.

    Evaluated on a copy — ``state`` is left untouched.  This is the
    utility the §V-C greedy scheduler maximizes per step, shared with the
    live controller's adaptive reordering.
    """
    working = state.copy()
    splits = 0
    for members in catchments:
        splits += working.refine(members)
    return splits


def mean_cluster_size_curve(
    universe: Sequence[ASN],
    catchment_history: Sequence[Mapping[LinkId, Catchment]],
    order: Optional[Sequence[int]] = None,
) -> List[float]:
    """Mean cluster size after each deployed configuration.

    Args:
        universe: sources to partition.
        catchment_history: per-configuration catchment maps.
        order: deployment order as indices into ``catchment_history``
            (defaults to given order).

    Returns:
        ``curve[i]`` = mean cluster size after deploying ``i + 1``
        configurations.
    """
    indices = list(order) if order is not None else list(range(len(catchment_history)))
    if sorted(indices) != sorted(set(indices)) or any(
        not 0 <= i < len(catchment_history) for i in indices
    ):
        raise SchedulingError("order must be unique valid indices")
    state = ClusterState(universe)
    curve: List[float] = []
    for index in indices:
        state.refine_with_catchments(catchment_history[index])
        curve.append(state.mean_size())
    return curve


def random_schedule_curves(
    universe: Sequence[ASN],
    catchment_history: Sequence[Mapping[LinkId, Catchment]],
    num_sequences: int = 100,
    seed: int = 0,
    max_steps: Optional[int] = None,
) -> List[List[float]]:
    """Curves for many random deployment orders (Figure 8's baseline)."""
    if num_sequences < 1:
        raise SchedulingError("need at least one random sequence")
    rng = random.Random(seed)
    steps = len(catchment_history) if max_steps is None else min(
        max_steps, len(catchment_history)
    )
    curves: List[List[float]] = []
    for _ in range(num_sequences):
        order = list(range(len(catchment_history)))
        rng.shuffle(order)
        curves.append(
            mean_cluster_size_curve(universe, catchment_history, order[:steps])
        )
    return curves


class GreedyScheduler:
    """The paper's iterative algorithm: always deploy the best next config.

    Args:
        universe: sources to partition.
        catchment_history: pre-measured catchment maps, one per
            configuration.
    """

    def __init__(
        self,
        universe: Sequence[ASN],
        catchment_history: Sequence[Mapping[LinkId, Catchment]],
    ) -> None:
        if not catchment_history:
            raise SchedulingError("no configurations to schedule")
        self.universe = list(universe)
        self.catchment_history = list(catchment_history)
        # Pre-restrict catchments to the universe for cheap gain evaluation.
        universe_set = set(universe)
        self._restricted: List[List[Tuple[LinkId, frozenset]]] = [
            [
                (link, frozenset(catchment & universe_set))
                for link, catchment in sorted(catchments.items())
            ]
            for catchments in self.catchment_history
        ]

    @classmethod
    def from_engine(
        cls,
        engine: "SimulationEngine",
        configs: Iterable["AnnouncementConfig"],
        universe: Optional[Iterable[ASN]] = None,
        **kwargs,
    ) -> "GreedyScheduler":
        """Build a scheduler by measuring ``configs`` through ``engine``.

        Configurations already simulated by the pipeline (or by an
        earlier scheduler) are cache hits — zero extra fixpoints.  Extra
        keyword arguments pass through to the constructor (e.g.
        ``volume_by_as`` for :class:`VolumeAwareGreedyScheduler`).
        """
        members, history = measured_catchment_history(engine, configs, universe)
        return cls(members, history, **kwargs)

    def _gain(self, state: ClusterState, config_index: int) -> int:
        """Splits the configuration would add to the current partition."""
        return refinement_gain(
            state, (members for _, members in self._restricted[config_index])
        )

    def _make_strategy(self) -> "TracebackStrategy":
        """The plugin this scheduler drives (hook for subclasses)."""
        from ..strategy import GreedyStrategy

        return GreedyStrategy()

    def run(
        self, max_steps: Optional[int] = None
    ) -> Tuple[List[int], List[float]]:
        """Greedy deployment; returns (order, mean-size curve).

        Stops early when no remaining configuration splits anything.
        Delegates to the ``greedy`` strategy plugin bound to the
        pre-restricted catchment maps — with no volume evidence its
        lexicographic score reduces exactly to the historical split-gain
        greedy, so order and curve are bit-identical to the pre-plugin
        scheduler.
        """
        from ..strategy import run_strategy

        strategy = self._make_strategy()
        strategy.bind([dict(pairs) for pairs in self._restricted])
        result = run_strategy(
            strategy,
            self.universe,
            max_steps=max_steps,
            curve_metric=self._curve_metric(),
            check_converged=False,
        )
        return result.order, result.curve

    def _curve_metric(self) -> Optional[Callable[[ClusterState], float]]:
        """Per-step curve value; None = mean cluster size."""
        return None


class VolumeAwareGreedyScheduler(GreedyScheduler):
    """Future-work variant: minimize traffic-weighted mean cluster size.

    Clusters inferred to carry more spoofed traffic get proportionally
    more utility from being split (paper §VIII: "jointly optimizing for
    cluster size and traffic volume").  The returned curve reports the
    weighted cost after each step.

    Delegates to the ``volume-greedy`` strategy plugin, which scores
    candidates by the lexicographic ``(weighted reduction, split gain)``
    tuple — so with an empty or all-zero volume estimate the schedule
    falls back to the unweighted §V-C split gain instead of dead-stopping
    with an empty order (the historical ``cost < best_cost`` bug, where
    a degenerate weighted cost of zero could never strictly improve).

    Args:
        universe: sources to partition.
        catchment_history: pre-measured catchment maps.
        volume_by_as: estimated per-AS spoofed volume (e.g. from honeypot
            observations attributed by an earlier localization pass).
    """

    def __init__(
        self,
        universe: Sequence[ASN],
        catchment_history: Sequence[Mapping[LinkId, Catchment]],
        volume_by_as: Mapping[ASN, float],
    ) -> None:
        super().__init__(universe, catchment_history)
        self.volume_by_as = dict(volume_by_as)

    def _weighted_cost(self, state: ClusterState) -> float:
        """Σ over clusters of cluster volume × cluster size."""
        cost = 0.0
        for cluster in state.clusters():
            volume = sum(self.volume_by_as.get(asn, 0.0) for asn in cluster)
            cost += volume * len(cluster)
        return cost

    def _make_strategy(self) -> "TracebackStrategy":
        from ..strategy import VolumeGreedyStrategy

        return VolumeGreedyStrategy(volume_by_as=self.volume_by_as)

    def _curve_metric(self) -> Optional[Callable[[ClusterState], float]]:
        return self._weighted_cost


def percentile_curve(
    curves: Sequence[Sequence[float]], percentile: float
) -> List[float]:
    """Per-step percentile across many curves (Figure 8's bands).

    Curves may differ in length — a schedule that converged early simply
    stopped deploying, and its metric holds at the final value from then
    on.  Short curves are therefore padded with their last value out to
    the longest curve (rather than truncating every curve to the
    shortest, which silently dropped the tail of long runs whenever one
    sequence converged quickly).  Empty curves contribute nothing.
    """
    if not curves:
        raise SchedulingError("no curves to aggregate")
    if not 0.0 <= percentile <= 100.0:
        raise ValueError("percentile must be in [0, 100]")
    length = max(len(curve) for curve in curves)
    result: List[float] = []
    for step in range(length):
        values = sorted(
            curve[step] if step < len(curve) else curve[-1]
            for curve in curves
            if curve
        )
        if not values:
            break
        rank = (percentile / 100.0) * (len(values) - 1)
        low = int(rank)
        high = min(low + 1, len(values) - 1)
        if values[low] == values[high]:
            result.append(float(values[low]))
            continue
        fraction = rank - low
        result.append(values[low] * (1.0 - fraction) + values[high] * fraction)
    return result
