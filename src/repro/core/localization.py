"""Attribution of spoofed traffic to clusters (paper §III-C, §V-D).

Per configuration, the origin observes only *per-link* spoofed volumes.
Every cluster lies entirely inside one catchment of every configuration
(that is what defines a cluster), so the observations form a linear
system::

    volume(link ℓ, config c) = Σ over clusters κ ⊆ catchment(ℓ, c) of volume(κ)

With enough configurations the system pins down per-cluster volumes.
:func:`estimate_cluster_volumes` solves it with non-negative least squares,
and :class:`SpoofLocalizer` wraps the workflow: rank clusters by estimated
volume and report how precisely the true sources were localized.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Tuple

import numpy as np
from scipy.optimize import nnls

from ..errors import ClusteringError
from ..spoof.sources import SourcePlacement
from ..types import ASN, Catchment, LinkId


@dataclass(frozen=True)
class RankedCluster:
    """A cluster with its estimated share of the spoofed traffic."""

    members: FrozenSet[ASN]
    estimated_volume: float

    @property
    def size(self) -> int:
        """Number of ASes in the cluster."""
        return len(self.members)


@dataclass
class LocalizationResult:
    """Outcome of attributing spoofed volume to clusters.

    Attributes:
        ranked: clusters by descending estimated volume.
        residual: least-squares residual of the volume system (how well
            the observations are explained).
    """

    ranked: List[RankedCluster]
    residual: float

    def top(self, count: int = 5) -> List[RankedCluster]:
        """The ``count`` most-suspect clusters."""
        return self.ranked[:count]

    def suspect_ases(self, volume_fraction: float = 0.95) -> FrozenSet[ASN]:
        """Smallest set of clusters' members covering the volume fraction."""
        if not 0.0 < volume_fraction <= 1.0:
            raise ValueError("volume_fraction must be in (0, 1]")
        total = sum(cluster.estimated_volume for cluster in self.ranked)
        if total <= 0.0:
            return frozenset()
        members: set = set()
        covered = 0.0
        for cluster in self.ranked:
            if covered >= volume_fraction * total:
                break
            members.update(cluster.members)
            covered += cluster.estimated_volume
        return frozenset(members)

    def evaluate_against(self, placement: SourcePlacement) -> "LocalizationQuality":
        """Score the result against the ground-truth placement."""
        suspects = self.suspect_ases()
        true_sources = placement.spoofing_ases
        found = true_sources & suspects
        return LocalizationQuality(
            true_sources=len(true_sources),
            sources_found=len(found),
            suspect_set_size=len(suspects),
        )


@dataclass(frozen=True)
class LocalizationQuality:
    """How well localization pinned down the true sources.

    Attributes:
        true_sources: number of ASes actually hosting spoofers.
        sources_found: true source ASes inside the suspect set.
        suspect_set_size: total ASes flagged as suspects.
    """

    true_sources: int
    sources_found: int
    suspect_set_size: int

    @property
    def recall(self) -> float:
        """Fraction of true source ASes captured by the suspect set."""
        return self.sources_found / self.true_sources if self.true_sources else 1.0

    @property
    def precision(self) -> float:
        """Fraction of suspect ASes that truly host sources."""
        if not self.suspect_set_size:
            return 1.0 if not self.true_sources else 0.0
        return self.sources_found / self.suspect_set_size


def estimate_cluster_volumes(
    clusters: Sequence[FrozenSet[ASN]],
    catchment_history: Sequence[Mapping[LinkId, Catchment]],
    volume_history: Sequence[Mapping[LinkId, float]],
) -> Tuple[List[float], float]:
    """Solve the per-cluster volume system with non-negative least squares.

    Args:
        clusters: the final partition.
        catchment_history: per configuration, the catchment map.
        volume_history: per configuration, observed per-link spoofed volume.

    Returns:
        (per-cluster volume estimates aligned with ``clusters``, residual).

    Raises:
        ClusteringError: when histories disagree in length or a cluster
            straddles a catchment boundary (not a true cluster).
    """
    if len(catchment_history) != len(volume_history):
        raise ClusteringError(
            f"{len(catchment_history)} catchment maps vs "
            f"{len(volume_history)} volume observations"
        )
    if not clusters:
        raise ClusteringError("no clusters to attribute volume to")

    rows: List[List[float]] = []
    rhs: List[float] = []
    representative = [min(cluster) for cluster in clusters]
    for catchments, volumes in zip(catchment_history, volume_history):
        member_link: Dict[ASN, LinkId] = {}
        for link, catchment in catchments.items():
            for asn in catchment:
                member_link[asn] = link
        for link in sorted(volumes):
            row = []
            for cluster, repr_asn in zip(clusters, representative):
                inside = member_link.get(repr_asn) == link
                if inside:
                    # Clusters must not straddle catchments; check cheaply
                    # against one more member when available.
                    for other in cluster:
                        if member_link.get(other, link) != link:
                            raise ClusteringError(
                                f"cluster containing AS {repr_asn} straddles "
                                f"catchments of link {link!r}"
                            )
                        break
                row.append(1.0 if inside else 0.0)
            rows.append(row)
            rhs.append(volumes[link])

    matrix = np.array(rows, dtype=float)
    target = np.array(rhs, dtype=float)
    solution, residual = nnls(matrix, target)
    return solution.tolist(), float(residual)


class SpoofLocalizer:
    """Ranks clusters by estimated spoofed volume."""

    def __init__(
        self,
        clusters: Sequence[FrozenSet[ASN]],
        catchment_history: Sequence[Mapping[LinkId, Catchment]],
    ) -> None:
        self.clusters = list(clusters)
        self.catchment_history = list(catchment_history)

    def localize(
        self, volume_history: Sequence[Mapping[LinkId, float]]
    ) -> LocalizationResult:
        """Attribute observed volumes and rank clusters."""
        volumes, residual = estimate_cluster_volumes(
            self.clusters, self.catchment_history, volume_history
        )
        ranked = sorted(
            (
                RankedCluster(members=cluster, estimated_volume=volume)
                for cluster, volume in zip(self.clusters, volumes)
            ),
            key=lambda item: (-item.estimated_volume, item.size),
        )
        return LocalizationResult(ranked=ranked, residual=residual)


def traffic_fraction_by_cluster_size(
    placement: SourcePlacement,
    clusters: Sequence[FrozenSet[ASN]],
    max_size: Optional[int] = None,
) -> Dict[int, float]:
    """Cumulative fraction of spoofed volume in clusters up to each size.

    This is the paper's Figure 10 metric: for each cluster size s, the
    fraction of total spoofed traffic originated by ASes living in
    clusters of size ≤ s.
    """
    volume_by_as = placement.volume_by_as(1.0)
    volume_by_size: Dict[int, float] = {}
    for cluster in clusters:
        volume = sum(volume_by_as.get(asn, 0.0) for asn in cluster)
        if volume:
            size = len(cluster)
            volume_by_size[size] = volume_by_size.get(size, 0.0) + volume
    total = sum(volume_by_size.values())
    limit = max_size if max_size is not None else max(volume_by_size, default=1)
    cumulative: Dict[int, float] = {}
    running = 0.0
    for size in range(1, limit + 1):
        running += volume_by_size.get(size, 0.0)
        cumulative[size] = running / total if total else 0.0
    return cumulative
