"""Cluster refinement by catchment intersection (paper §III-B).

A *cluster* is a set of sources that fell in the same catchment in every
announcement configuration deployed so far.  Starting from one cluster
holding every source, each observed catchment α splits any overlapping
cluster κ into κ∩α and κ∖α.  Small clusters are the goal: they localize
spoofed-traffic sources precisely enough for targeted intervention.

:class:`ClusterState` implements the refinement incrementally so
schedulers can interleave "deploy a configuration" and "inspect cluster
sizes" (Figures 4, 5, 8 of the paper all need per-step sizes).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Mapping, Set

from ..errors import ClusteringError
from ..types import ASN, LinkId


class ClusterState:
    """Mutable partition of a fixed universe of sources.

    Args:
        universe: the sources to partition.  The paper fixes this to the
            ASes observed under the initial anycast-all configuration
            (§IV-d); sources outside the universe are ignored by
            :meth:`refine`.
    """

    def __init__(self, universe: Iterable[ASN]) -> None:
        members = set(universe)
        if not members:
            raise ClusteringError("cluster universe must be non-empty")
        self._clusters: Dict[int, Set[ASN]] = {0: members}
        self._cluster_of: Dict[ASN, int] = {asn: 0 for asn in members}
        self._next_id = 1

    # ------------------------------------------------------------------
    # Refinement
    # ------------------------------------------------------------------

    def refine(self, catchment: Iterable[ASN]) -> int:
        """Split clusters against one catchment; return the number of splits.

        For each cluster κ overlapping the catchment α, replace κ with
        κ∩α and κ∖α (no-op when κ ⊆ α or κ∩α is empty).
        """
        inside = {asn for asn in catchment if asn in self._cluster_of}
        if not inside:
            return 0
        affected: Dict[int, Set[ASN]] = {}
        for asn in inside:
            affected.setdefault(self._cluster_of[asn], set()).add(asn)
        splits = 0
        for cluster_id, overlap in affected.items():
            cluster = self._clusters[cluster_id]
            if len(overlap) == len(cluster):
                continue  # κ ⊆ α: no information
            cluster -= overlap
            new_id = self._next_id
            self._next_id += 1
            self._clusters[new_id] = overlap
            for asn in overlap:
                self._cluster_of[asn] = new_id
            splits += 1
        return splits

    def refine_with_catchments(
        self,
        catchments: Mapping[LinkId, Iterable[ASN]],
        degraded_links: Iterable[LinkId] = (),
    ) -> int:
        """Refine against every catchment of one configuration.

        Links listed in ``degraded_links`` are *skipped*: their
        catchments are known to be partial (measurement loss), and a
        partial catchment would split off sources that merely went
        unmeasured.  Skipping degrades gracefully — clusters stay wider
        than they could be, but never become wrong.
        """
        skip = frozenset(degraded_links)
        splits = 0
        for link in sorted(catchments):
            if link in skip:
                continue
            splits += self.refine(catchments[link])
        return splits

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @property
    def universe(self) -> FrozenSet[ASN]:
        """The full set of partitioned sources."""
        return frozenset(self._cluster_of)

    def clusters(self) -> List[FrozenSet[ASN]]:
        """Current clusters, largest first (ties broken by smallest member)."""
        return sorted(
            (frozenset(cluster) for cluster in self._clusters.values()),
            key=lambda cluster: (-len(cluster), min(cluster)),
        )

    def cluster_of(self, asn: ASN) -> FrozenSet[ASN]:
        """The cluster containing ``asn``.

        Raises:
            ClusteringError: if ``asn`` is not in the universe.
        """
        try:
            cluster_id = self._cluster_of[asn]
        except KeyError:
            raise ClusteringError(f"AS {asn} not in cluster universe") from None
        return frozenset(self._clusters[cluster_id])

    def num_clusters(self) -> int:
        """Number of clusters in the current partition."""
        return len(self._clusters)

    def sizes(self) -> List[int]:
        """Cluster sizes in descending order."""
        return sorted((len(c) for c in self._clusters.values()), reverse=True)

    def mean_size(self) -> float:
        """Mean cluster size (per cluster): |universe| / #clusters."""
        return len(self._cluster_of) / len(self._clusters)

    def mean_size_weighted(self) -> float:
        """AS-weighted mean cluster size (the average AS's cluster size).

        This is the metric behind the paper's Figure 7 phrasing "ASes ...
        are in clusters with N ASes on average".
        """
        total = sum(len(c) ** 2 for c in self._clusters.values())
        return total / len(self._cluster_of)

    def size_percentile(self, percentile: float) -> float:
        """Percentile of cluster sizes (linear interpolation, 0–100)."""
        if not 0.0 <= percentile <= 100.0:
            raise ValueError("percentile must be in [0, 100]")
        ordered = sorted(len(c) for c in self._clusters.values())
        if len(ordered) == 1:
            return float(ordered[0])
        rank = (percentile / 100.0) * (len(ordered) - 1)
        low = int(rank)
        high = min(low + 1, len(ordered) - 1)
        if ordered[low] == ordered[high]:
            return float(ordered[low])
        fraction = rank - low
        return ordered[low] * (1.0 - fraction) + ordered[high] * fraction

    def singleton_fraction(self) -> float:
        """Fraction of clusters containing exactly one source."""
        singles = sum(1 for c in self._clusters.values() if len(c) == 1)
        return singles / len(self._clusters)

    def copy(self) -> "ClusterState":
        """Independent copy of the current partition."""
        clone = ClusterState.__new__(ClusterState)
        clone._clusters = {cid: set(c) for cid, c in self._clusters.items()}
        clone._cluster_of = dict(self._cluster_of)
        clone._next_id = self._next_id
        return clone

    # ------------------------------------------------------------------
    # Serialization (checkpointing)
    # ------------------------------------------------------------------

    def as_serializable(self) -> List[List[ASN]]:
        """The partition as plain nested lists (JSON-safe, canonical order).

        Internal cluster ids are not part of the partition's identity, so
        a round trip through :meth:`from_serializable` preserves exactly
        the observable state (:meth:`clusters` and everything derived).
        """
        return [sorted(cluster) for cluster in self.clusters()]

    @classmethod
    def from_serializable(cls, clusters: Iterable[Iterable[ASN]]) -> "ClusterState":
        """Rebuild a partition dumped by :meth:`as_serializable`.

        Raises:
            ClusteringError: if the clusters overlap or are empty.
        """
        state = cls.__new__(cls)
        state._clusters = {}
        state._cluster_of = {}
        state._next_id = 0
        for members in clusters:
            cluster = set(members)
            if not cluster:
                raise ClusteringError("serialized cluster must be non-empty")
            for asn in cluster:
                if asn in state._cluster_of:
                    raise ClusteringError(
                        f"AS {asn} appears in more than one serialized cluster"
                    )
                state._cluster_of[asn] = state._next_id
            state._clusters[state._next_id] = cluster
            state._next_id += 1
        if not state._clusters:
            raise ClusteringError("cluster universe must be non-empty")
        return state


def clusters_from_catchment_history(
    universe: Iterable[ASN],
    history: Iterable[Mapping[LinkId, Iterable[ASN]]],
) -> ClusterState:
    """Build the final partition from a sequence of configuration catchments.

    Convenience wrapper over :class:`ClusterState` used by the figure
    runners when only the end state matters.
    """
    state = ClusterState(universe)
    for catchments in history:
        state.refine_with_catchments(catchments)
    return state
