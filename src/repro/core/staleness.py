"""Catchment staleness: the accuracy/delay trade-off of §V-C.

Localizing during an attack, the origin can (a) *reuse* catchments
measured days earlier — instant, but routes may have drifted — or (b)
*remeasure* per configuration — accurate, but each measurement costs a
70-minute dwell.  The paper flags this as "a trade-off between
identification accuracy ... and identification delay ... which depends on
route stability".

This module makes the trade-off measurable:

* :func:`churned_policy` derives a policy representing the Internet after
  some drift — a fraction of ASes re-resolve their tie-breaks (router
  state changed) and a smaller fraction changes LocalPref tables
  (contracts changed).
* :class:`StalenessExperiment` quantifies, for increasing drift, how many
  sources a stale catchment map misplaces and how much localization
  precision survives.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, List, Sequence

from ..bgp.announcement import AnnouncementConfig
from ..bgp.policy import PolicyModel
from ..bgp.simulator import RoutingOutcome, RoutingSimulator
from ..topology.graph import ASGraph
from ..topology.peering import OriginNetwork
from ..types import ASN, Catchment
from .clustering import ClusterState


def churned_policy(
    base: PolicyModel,
    drift: float,
    churn_seed: int = 1,
    policy_change_fraction: float = 0.1,
) -> PolicyModel:
    """A policy model representing the Internet after route drift.

    Args:
        base: the policy at measurement time.
        drift: fraction of tie-break state that re-resolved (0 = frozen
            Internet, 1 = every tie re-rolled).  Implemented by salting
            the deterministic tiebreak for a ``drift`` share of ASes via a
            changed salt.
        churn_seed: distinguishes independent drift samples.
        policy_change_fraction: share of *drifted* ASes whose LocalPref
            table also changed (new transit contracts), approximated by
            re-seeding their policy noise.

    Returns:
        A new :class:`PolicyModel` over the same graph.
    """
    if not 0.0 <= drift <= 1.0:
        raise ValueError("drift must be in [0, 1]")
    if drift == 0.0:
        return base
    # A different tiebreak salt re-rolls every tie; scale the effect by
    # blending: ASes hash-selected with probability `drift` use the new
    # salt.  Implemented with a derived PolicyModel subclass closure.
    drifted = _DriftedPolicy(base, drift, churn_seed)
    return drifted


class _DriftedPolicy(PolicyModel):
    """PolicyModel whose tiebreak salt differs for a share of ASes."""

    def __init__(self, base: PolicyModel, drift: float, churn_seed: int) -> None:
        # Rebuild with identical structure, then copy the base model's
        # actual per-AS state so only the drift differs.
        super().__init__(
            base.graph,
            seed=base.seed,
            policy_noise=0.0,
            loop_prevention_disabled_fraction=0.0,
            tier1_leak_filtering=base.tier1_leak_filtering,
            tiebreak_salt=base.tiebreak_salt,
            geography=base.geography,
        )
        self._pref_tables = dict(base._pref_tables)
        self._loop_prevention_disabled = set(base._loop_prevention_disabled)
        self._drift = drift
        self._churn_seed = churn_seed

    def _as_drifted(self, asn: ASN) -> bool:
        import zlib

        digest = zlib.crc32(f"drift|{asn}|{self._churn_seed}".encode())
        return (digest % 10_000) / 10_000.0 < self._drift

    def salt_for(self, holder: ASN) -> int:
        """Per-AS tiebreak salt: drifted ASes re-rolled their router state."""
        if self._as_drifted(holder):
            return self.tiebreak_salt + 1_000_003 * (self._churn_seed + 1)
        return self.tiebreak_salt


def misplaced_fraction(
    stale_outcome: "RoutingOutcome",
    live_outcome: "RoutingOutcome",
    universe: FrozenSet[ASN],
) -> float:
    """Fraction of sources whose live catchment differs from the stale map.

    Compares two outcomes of the *same* configuration simulated under the
    measurement-time and current policies; only sources that still hold a
    route live are comparable.  This is the churn signal the live
    controller uses to decide whether stale catchments need remeasuring.
    """
    comparable = [
        asn for asn in universe if live_outcome.catchment_of(asn) is not None
    ]
    if not comparable:
        return 0.0
    misplaced = sum(
        1
        for asn in comparable
        if stale_outcome.catchment_of(asn) != live_outcome.catchment_of(asn)
    )
    return misplaced / len(comparable)


@dataclass
class StalenessPoint:
    """Accuracy of stale catchments at one drift level.

    Attributes:
        drift: fraction of ASes whose tie-break state re-resolved.
        misplaced_fraction: sources whose live catchment differs from the
            stale map under the anycast-all configuration.
        cluster_agreement: fraction of sampled source pairs whose
            same-cluster relation matches between stale and live
            partitions.
    """

    drift: float
    misplaced_fraction: float
    cluster_agreement: float


class StalenessExperiment:
    """Quantifies localization degradation as catchments go stale."""

    def __init__(
        self,
        graph: ASGraph,
        origin: OriginNetwork,
        policy: PolicyModel,
        configs: Sequence[AnnouncementConfig],
        pair_sample: int = 40,
    ) -> None:
        if not configs:
            raise ValueError("need at least one configuration")
        self.graph = graph
        self.origin = origin
        self.policy = policy
        self.configs = list(configs)
        self.pair_sample = pair_sample
        simulator = RoutingSimulator(graph, origin, policy)
        self._stale_outcomes = [simulator.simulate(c) for c in self.configs]
        self.universe = self._stale_outcomes[0].covered_ases

    def evaluate(self, drift: float, churn_seed: int = 1) -> StalenessPoint:
        """Measure stale-map error at one drift level."""
        live_policy = churned_policy(self.policy, drift, churn_seed)
        live_sim = RoutingSimulator(self.graph, self.origin, live_policy)
        live_outcomes = [live_sim.simulate(c) for c in self.configs]

        stale_first, live_first = self._stale_outcomes[0], live_outcomes[0]
        misplaced = misplaced_fraction(stale_first, live_first, self.universe)

        stale_state = self._partition(self._stale_outcomes)
        live_state = self._partition(live_outcomes)
        sample = sorted(self.universe)[: self.pair_sample]
        checked = agreements = 0
        for i, a in enumerate(sample):
            for b in sample[i + 1 :]:
                checked += 1
                stale_same = b in stale_state.cluster_of(a)
                live_same = b in live_state.cluster_of(a)
                if stale_same == live_same:
                    agreements += 1
        return StalenessPoint(
            drift=drift,
            misplaced_fraction=misplaced,
            cluster_agreement=agreements / checked if checked else 1.0,
        )

    def _partition(self, outcomes) -> ClusterState:
        state = ClusterState(self.universe)
        for outcome in outcomes:
            state.refine_with_catchments(
                {
                    link: frozenset(members & self.universe)
                    for link, members in outcome.catchments.items()
                }
            )
        return state

    def sweep(
        self, drifts: Sequence[float] = (0.0, 0.1, 0.3, 0.6, 1.0)
    ) -> List[StalenessPoint]:
        """Evaluate a range of drift levels."""
        return [self.evaluate(drift) for drift in drifts]
