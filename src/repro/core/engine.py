"""Parallel, memoizing simulation engine for announcement schedules.

The paper's workflow deploys ~705 announcement configurations and
intersects their catchments; every consumer in this repo — the
:class:`~repro.core.pipeline.SpoofTracker` schedule, the §V-B
:class:`~repro.core.refinement.LargeClusterSplitter`, the §V-C
schedulers, and the benchmark harness — ultimately funnels through
"simulate this configuration".  :class:`SimulationEngine` makes that hot
path fast three ways:

1. **Fan-out** — configurations are distributed over a
   :mod:`multiprocessing` pool.  Each worker reconstructs the
   :class:`~repro.bgp.simulator.RoutingSimulator` exactly once, in the
   pool initializer, from a picklable testbed spec (or from the pickled
   simulator itself when no spec is available); results stream back in
   schedule order.
2. **Memoization** — outcomes are cached in an LRU keyed by the
   *canonical* form of the configuration
   (:meth:`~repro.bgp.announcement.AnnouncementConfig.key`, which
   ignores label/phase metadata), so no configuration is ever simulated
   twice — not by a repeated schedule, not by the splitter re-deploying
   the anycast baseline, not by a scheduler replaying history.
3. **Warm starts** — a configuration that differs from an
   already-computed one only by prepending/poisoning/communities (same
   announcement set) or by dropped links (subset of all links) seeds its
   fixpoint from that *parent* outcome's routes instead of the empty
   state, cutting Gauss-Seidel passes on the long prepend/poison phases.

Determinism: the warm-start parent of a configuration is a pure function
of the configuration itself (never of scheduling order or cache
contents — a missing parent is simulated on demand), so every outcome is
a deterministic function of ``(simulator, config)``.  A parallel run is
therefore bit-identical to a serial one: same routes, same catchments,
same clusters.
"""

from __future__ import annotations

import math
import time
from collections import OrderedDict
from dataclasses import dataclass, replace
from typing import (
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
)

from ..bgp.announcement import AnnouncementConfig
from ..bgp.simulator import RoutingOutcome, RoutingSimulator
from ..errors import InjectedFault, SimulationError
from ..faults.injection import FaultAction, FaultInjector
from ..faults.resilience import CircuitBreaker, RetryPolicy
from ..obs.tracing import TraceContext, _derive_id as _derive_span_id

#: Default bound on memoized outcomes.  An outcome holds one route per
#: covered AS, so the default comfortably fits the paper's 705-config
#: schedule on paper-scale topologies while bounding worst-case memory.
DEFAULT_CACHE_SIZE = 4096

ConfigKey = Tuple
_Lookup = Callable[[ConfigKey], Optional[RoutingOutcome]]
_Store = Callable[[ConfigKey, RoutingOutcome], None]


@dataclass
class EngineStats:
    """Counters accumulated by a :class:`SimulationEngine`.

    Every *count* here is a logical, scheduling-independent quantity: a
    seeded scenario produces identical counts serial or parallel, which
    is what lets the observability layer treat them as deterministic
    metrics.  The time fields (``wall_time``, ``queue_wait``) and
    ``redundant_parent_sims`` are measured/physical quantities and vary
    run to run.

    Attributes:
        configs_requested: configurations asked for (hits + misses).
        configs_simulated: Gauss-Seidel fixpoints charged to the run,
            including warm-start parents simulated on demand.  Counted
            *logically* — as the equivalent serial run would have run
            them — so the total is identical at any worker count even
            though workers may physically re-simulate a shared parent.
        cache_hits: requests served from the outcome cache (including
            duplicates within one batch).
        warm_starts: simulations seeded from a parent outcome.
        passes_saved: estimated Gauss-Seidel passes avoided by warm
            starts — Σ max(0, parent passes − warm-started passes); the
            parent's cold pass count is the stand-in for what the child
            would have cost cold.
        wall_time: seconds spent inside :meth:`SimulationEngine.simulate`
            / :meth:`SimulationEngine.simulate_many` /
            :meth:`SimulationEngine.iter_simulate`.  Measured with the
            monotonic clock over disjoint windows — consumer time between
            ``iter_simulate`` yields is never attributed to the engine.
        queue_wait: seconds of ``wall_time`` spent blocked waiting on
            worker-pool results (0 in serial runs).
        redundant_parent_sims: physical warm-start-parent fixpoints run
            beyond the logical count (workers re-deriving a parent the
            serial run would have had cached).  Net of work *saved* on
            containment re-runs, so only the post-batch value is
            meaningful.
        worker_failures: pool tasks that died or timed out (injected or
            real); each triggers a pool teardown and a serial re-run of
            the outstanding work.
        last_worker_error: repr of the most recent exception a worker
            failure was contained from ("" when none occurred).
        retries: serial attempts re-run after an injected fault.
        faults_bypassed: tasks whose injected fault outlived the retry
            budget and ran with injection suppressed.
        pool_rebuilds: worker pools torn down after a failure (a fresh
            pool is built lazily on the next parallel batch).
    """

    configs_requested: int = 0
    configs_simulated: int = 0
    cache_hits: int = 0
    warm_starts: int = 0
    passes_saved: int = 0
    wall_time: float = 0.0
    queue_wait: float = 0.0
    redundant_parent_sims: int = 0
    worker_failures: int = 0
    last_worker_error: str = ""
    retries: int = 0
    faults_bypassed: int = 0
    pool_rebuilds: int = 0

    def copy(self) -> "EngineStats":
        """Independent snapshot of the current counters."""
        return replace(self)

    def since(self, before: "EngineStats") -> "EngineStats":
        """Counters accumulated after the ``before`` snapshot was taken."""
        return EngineStats(
            configs_requested=self.configs_requested - before.configs_requested,
            configs_simulated=self.configs_simulated - before.configs_simulated,
            cache_hits=self.cache_hits - before.cache_hits,
            warm_starts=self.warm_starts - before.warm_starts,
            passes_saved=self.passes_saved - before.passes_saved,
            wall_time=self.wall_time - before.wall_time,
            queue_wait=self.queue_wait - before.queue_wait,
            redundant_parent_sims=self.redundant_parent_sims
            - before.redundant_parent_sims,
            worker_failures=self.worker_failures - before.worker_failures,
            last_worker_error=(
                self.last_worker_error
                if self.last_worker_error != before.last_worker_error
                or self.worker_failures > before.worker_failures
                else ""
            ),
            retries=self.retries - before.retries,
            faults_bypassed=self.faults_bypassed - before.faults_bypassed,
            pool_rebuilds=self.pool_rebuilds - before.pool_rebuilds,
        )

    def summary(self) -> str:
        """One-line human-readable rendering."""
        text = (
            f"{self.configs_simulated} simulated / "
            f"{self.configs_requested} requested, "
            f"{self.cache_hits} cache hits, "
            f"{self.warm_starts} warm starts "
            f"(~{self.passes_saved} passes saved), "
            f"{self.wall_time:.2f}s"
        )
        if self.worker_failures or self.retries or self.faults_bypassed:
            text += (
                f", {self.worker_failures} worker failures / "
                f"{self.retries} retries / "
                f"{self.faults_bypassed} bypassed"
            )
        return text


# ----------------------------------------------------------------------
# Warm-start parent derivation
# ----------------------------------------------------------------------


def warm_start_parent(
    config: AnnouncementConfig, all_links: Sequence[str]
) -> Optional[AnnouncementConfig]:
    """The configuration whose fixpoint seeds ``config``'s, or None.

    * A configuration using prepending, poisoning, or no-export
      communities is seeded from the plain locations configuration with
      the same announcement set (same routes everywhere the manipulation
      does not bite).
    * A locations configuration announcing a proper subset of the links
      is seeded from the anycast-all configuration (only sources behind
      the withdrawn links move).
    * The anycast-all configuration itself has no parent (cold start).

    The parent depends only on the configuration and the origin's link
    set — never on what happens to be cached — so warm-started results
    are reproducible regardless of scheduling or worker count.
    """
    if config.prepended or config.poisoned or config.no_export:
        return AnnouncementConfig(
            announced=config.announced, label="warm-parent"
        )
    full = frozenset(all_links)
    if config.announced != full:
        return AnnouncementConfig(announced=full, label="warm-root")
    return None


def _simulate_resolved(
    simulator: RoutingSimulator,
    config: AnnouncementConfig,
    warm_start: bool,
    lookup: _Lookup,
    store: _Store,
) -> Tuple[RoutingOutcome, int, int, int]:
    """Simulate ``config``, resolving warm-start parents through a cache.

    Returns ``(outcome, fixpoints_run, warm_starts, passes_saved)``.
    Missing parents are simulated (and cached via ``store``) on demand,
    so the result never depends on cache contents.
    """
    if not warm_start:
        return simulator.simulate(config), 1, 0, 0
    parent = warm_start_parent(config, simulator.origin.link_ids)
    if parent is None:
        return simulator.simulate(config), 1, 0, 0
    fixpoints = 0
    parent_key = parent.key()
    parent_outcome = lookup(parent_key)
    if parent_outcome is None:
        parent_outcome, parent_fixpoints, _, _ = _simulate_resolved(
            simulator, parent, warm_start, lookup, store
        )
        store(parent_key, parent_outcome)
        fixpoints += parent_fixpoints
    outcome = simulator.simulate(config, warm_start=parent_outcome.routes)
    saved = max(0, parent_outcome.passes - outcome.passes)
    return outcome, fixpoints + 1, 1, saved


# ----------------------------------------------------------------------
# Worker-process machinery
# ----------------------------------------------------------------------

#: Per-worker state installed by the pool initializer: the reconstructed
#: simulator, the warm-start flag, and a worker-local parent cache.
_WORKER_STATE: Optional[Tuple[RoutingSimulator, bool, Dict]] = None


def _init_worker(payload, warm_start: bool) -> None:
    """Pool initializer: build the worker's simulator exactly once.

    ``payload`` is either a testbed spec exposing ``build_simulator()``
    (the cheap-to-pickle path) or a pickled :class:`RoutingSimulator`
    (fallback for ad-hoc testbeds without a spec).
    """
    global _WORKER_STATE
    if hasattr(payload, "build_simulator"):
        simulator = payload.build_simulator()
    else:
        simulator = payload
    _WORKER_STATE = (simulator, warm_start, {})


def _worker_simulate(
    item: Tuple[
        int,
        AnnouncementConfig,
        Optional[FaultAction],
        Tuple[Tuple[ConfigKey, RoutingOutcome], ...],
        Optional[Tuple],
    ]
) -> Tuple[
    int,
    RoutingOutcome,
    int,
    int,
    int,
    Tuple[Tuple[ConfigKey, RoutingOutcome], ...],
    Optional[Dict],
]:
    """Pool task: simulate one configuration in a worker process.

    Warm-start parents are resolved against a worker-local cache (they
    recur across a schedule's prepend/poison phases, so each worker pays
    for each parent at most once).  Parents travel both ways: the main
    process ships any already-cached ancestor with the task, and parents
    the worker had to simulate itself come back in the result so the
    main cache learns them — later batches hit instead of re-deriving.

    When the engine is traced, the task carries a serialized
    :class:`~repro.obs.tracing.TraceContext` plus a pre-assigned span
    name/ordinal/charge: the worker mints the deterministic child span
    record *here* (its identity was fixed before dispatch, only the
    measured duration is local) and ships it back for grafting into the
    main tracer — the span tree is identical at any worker count.

    A :class:`FaultAction` decided by the main process (chaos runs)
    executes *here*, at the site — raising an
    :class:`~repro.errors.InjectedFault` or stalling the task — so the
    engine's containment path is exercised exactly as a real worker
    failure would exercise it.
    """
    assert _WORKER_STATE is not None, "worker initializer did not run"
    simulator, warm_start, parent_cache = _WORKER_STATE
    index, config, action, parents, trace = item
    for parent_key, parent_outcome in parents:
        parent_cache.setdefault(parent_key, parent_outcome)
    if action is not None:
        action.execute()
    new_parents: List[Tuple[ConfigKey, RoutingOutcome]] = []

    def _store(key: ConfigKey, outcome: RoutingOutcome) -> None:
        parent_cache[key] = outcome
        new_parents.append((key, outcome))

    sim_start = time.perf_counter()
    outcome, fixpoints, warms, saved = _simulate_resolved(
        simulator,
        config,
        warm_start,
        parent_cache.get,
        _store,
    )
    span_record: Optional[Dict] = None
    if trace is not None:
        ctx_tuple, name, ordinal, count = trace
        span_record = TraceContext.from_tuple(ctx_tuple).child_record(
            name,
            ordinal,
            attrs={"configs": count},
            duration_seconds=time.perf_counter() - sim_start,
        )
    return index, outcome, fixpoints, warms, saved, tuple(new_parents), span_record


def _worker_simulate_batch(items: Tuple) -> Tuple:
    """Pool task: simulate a whole batch of configurations in one dispatch.

    One pool task per *configuration* made the fan-out lose to a single
    core on fast simulators: each task pays pickling of the config, the
    shipped parents, and the full result outcome, plus a pool round-trip.
    Batching amortizes that overhead over many configurations, and the
    worker-local parent cache additionally serves later items of the same
    batch.  Results are the per-item tuples of :func:`_worker_simulate`,
    unchanged, so the main-process accounting is identical.
    """
    return tuple(_worker_simulate(item) for item in items)


# ----------------------------------------------------------------------
# The engine
# ----------------------------------------------------------------------


class SimulationEngine:
    """Cached, optionally parallel front end to a :class:`RoutingSimulator`.

    Args:
        simulator: the simulator to run configurations through.
        workers: worker processes for :meth:`simulate_many`.  1 (the
            default) keeps everything in-process — exactly the previous
            serial behaviour, plus caching and warm starts.
        spec: picklable testbed spec (e.g.
            :class:`~repro.core.pipeline.TestbedSpec`) from which workers
            rebuild the simulator.  When None, the simulator itself is
            shipped to the pool initializer — fine under the default
            ``fork`` start method, required to be picklable elsewhere.
        warm_start: seed fixpoints from parent outcomes (see
            :func:`warm_start_parent`).
        cache_size: bound on memoized outcomes (LRU eviction).
        injector: optional chaos hook
            (:class:`~repro.faults.injection.FaultInjector`); None (the
            default) leaves the hot path untouched.
        retry_policy: containment knobs — per-task timeout on the pool,
            bounded serial retries with deterministic exponential backoff
            for injected faults.  With batched dispatch the timeout
            bounds one *batch*, not one configuration.
        breaker_threshold: consecutive pool failures after which the
            circuit opens and the engine stays serial.
        dispatch_batch: configurations shipped to a worker per pool task
            in :meth:`simulate_many`.  None (the default) auto-sizes to
            ``ceil(misses / (workers * 2))`` — two waves per worker, so
            dispatch overhead amortizes while stragglers still balance.
            Set to 1 to restore one-task-per-configuration dispatch.
            :meth:`iter_simulate` always dispatches per configuration:
            its contract is streaming results as each one completes.
        tracer: optional :class:`~repro.obs.tracing.Tracer`.  When armed,
            each batch with cache misses opens a deterministic
            ``engine_batch`` span with per-miss ``simulate`` /
            ``warm_start`` child spans carrying the logical fixpoint
            charge.  Children are minted in the worker processes (see
            :class:`~repro.obs.tracing.TraceContext`) and grafted back,
            with identities assigned from the scheduling-independent
            miss structure — the resulting
            :func:`~repro.obs.tracing.span_tree_signature` is identical
            at any worker count.

    The engine is safe to share across every consumer of one testbed —
    sharing is the point: the splitter's baseline is the schedule's
    anycast-all configuration, already cached.  It is also a context
    manager; :meth:`close` tears down the worker pool (a pool is only
    created once :meth:`simulate_many` actually runs with ``workers >
    1``).

    **Failure containment**: a worker that raises or times out no longer
    aborts the batch.  The broken pool is torn down, the failure is
    recorded in :class:`EngineStats`, and the outstanding work re-runs
    serially in-process (bit-identical results — simulation is a pure
    function of ``(simulator, config)``).  After ``breaker_threshold``
    broken pools the circuit opens and fan-out is abandoned for good.
    """

    def __init__(
        self,
        simulator: RoutingSimulator,
        workers: int = 1,
        spec=None,
        warm_start: bool = True,
        cache_size: int = DEFAULT_CACHE_SIZE,
        injector: Optional[FaultInjector] = None,
        retry_policy: Optional[RetryPolicy] = None,
        breaker_threshold: int = 2,
        bus=None,
        dispatch_batch: Optional[int] = None,
        tracer=None,
    ) -> None:
        if workers < 1:
            raise SimulationError("workers must be at least 1")
        if cache_size < 1:
            raise SimulationError("cache_size must be at least 1")
        if dispatch_batch is not None and dispatch_batch < 1:
            raise SimulationError("dispatch_batch must be at least 1")
        self.simulator = simulator
        self.workers = workers
        self.dispatch_batch = dispatch_batch
        self.spec = spec
        self.warm_start = warm_start
        self.cache_size = cache_size
        self.injector = injector
        self.bus = bus
        self.tracer = tracer
        self.retry_policy = retry_policy or RetryPolicy()
        self.breaker = CircuitBreaker(breaker_threshold)
        self.stats = EngineStats()
        self._cache: "OrderedDict[ConfigKey, RoutingOutcome]" = OrderedDict()
        self._fault_ordinals: Dict[ConfigKey, int] = {}
        self._pool = None

    # -- cache ----------------------------------------------------------

    def _cache_get(self, key: ConfigKey) -> Optional[RoutingOutcome]:
        outcome = self._cache.get(key)
        if outcome is not None:
            self._cache.move_to_end(key)
        return outcome

    def _cache_put(self, key: ConfigKey, outcome: RoutingOutcome) -> None:
        self._cache[key] = outcome
        self._cache.move_to_end(key)
        while len(self._cache) > self.cache_size:
            self._cache.popitem(last=False)

    def cached_outcome(
        self, config: AnnouncementConfig
    ) -> Optional[RoutingOutcome]:
        """The cached outcome for ``config``, or None (never simulates)."""
        return self._cache_get(config.key())

    def clear_cache(self) -> None:
        """Drop every memoized outcome."""
        self._cache.clear()

    # -- simulation -----------------------------------------------------

    def simulate(self, config: AnnouncementConfig) -> RoutingOutcome:
        """Simulate one configuration (served from cache when possible)."""
        return self.simulate_many([config])[0]

    def simulate_many(
        self, configs: Sequence[AnnouncementConfig]
    ) -> List[RoutingOutcome]:
        """Simulate a batch; results return in the batch's order.

        Cache hits (including duplicate configurations within the batch)
        are never re-simulated.  Misses run serially in-process
        (``workers == 1``) or fan out over the worker pool.
        """
        start = time.perf_counter()
        before = self.stats.copy() if self.bus is not None else None
        self.stats.configs_requested += len(configs)

        # Partition into hits and first-occurrence misses.
        by_key: Dict[ConfigKey, RoutingOutcome] = {}
        misses: List[Tuple[ConfigKey, AnnouncementConfig]] = []
        pending = set()
        keys: List[ConfigKey] = []
        for config in configs:
            key = config.key()
            keys.append(key)
            if key in by_key or key in pending:
                self.stats.cache_hits += 1
                continue
            cached = self._cache_get(key)
            if cached is not None:
                self.stats.cache_hits += 1
                by_key[key] = cached
                continue
            pending.add(key)
            misses.append((key, config))

        if misses:
            trace = self._open_batch_trace(misses)
            try:
                if self.workers == 1 or len(misses) == 1:
                    self._run_serial(misses, by_key, trace=trace)
                else:
                    self._run_parallel(misses, by_key, trace=trace)
            finally:
                self._close_batch_trace(trace)

        self.stats.wall_time += time.perf_counter() - start
        if before is not None:
            self._publish_batch(before)
        return [by_key[key] for key in keys]

    # -- deterministic span propagation ---------------------------------

    def _span_plan(
        self,
        misses: List[Tuple[ConfigKey, AnnouncementConfig]],
        logical: Dict[ConfigKey, int],
    ) -> Dict[ConfigKey, Tuple[str, int, int]]:
        """``key -> (name, ordinal, charge)`` for every charged miss.

        Derived from the batch's *logical* structure (never from pool
        scheduling): misses the serial reference run would serve en
        passant get no span, every other miss gets a ``simulate`` or
        ``warm_start`` span with an ordinal assigned in batch order.
        """
        plan: Dict[ConfigKey, Tuple[str, int, int]] = {}
        counters: Dict[str, int] = {}
        all_links = self.simulator.origin.link_ids
        for key, config in misses:
            count = logical[key]
            if count == 0:
                continue
            name = "simulate"
            if (
                self.warm_start
                and warm_start_parent(config, all_links) is not None
            ):
                name = "warm_start"
            ordinal = counters.get(name, 0)
            counters[name] = ordinal + 1
            plan[key] = (name, ordinal, count)
        return plan

    def _open_batch_trace(
        self, misses: List[Tuple[ConfigKey, AnnouncementConfig]]
    ) -> Optional[Dict]:
        """Mint this batch's ``engine_batch`` span (None when untraced).

        The span id and its per-parent ordinal are consumed up front so
        child identities can be fixed before dispatch; the record itself
        is grafted at :meth:`_close_batch_trace` with children first, in
        batch order, regardless of pool arrival order.
        """
        if self.tracer is None or not misses:
            return None
        parent = self.tracer.current
        ordinal = parent._child_ordinals.get("engine_batch", 0)
        parent._child_ordinals["engine_batch"] = ordinal + 1
        span_id = _derive_span_id(parent.span_id, "engine_batch", ordinal)
        ctx = TraceContext(
            parent_span_id=span_id, run_name=self.tracer.root.name
        )
        return {
            "ctx": ctx,
            "parent_id": parent.span_id,
            "misses": len(misses),
            "plan": self._span_plan(misses, self._logical_fixpoints(misses)),
            "records": {},
            "start": time.perf_counter(),
        }

    def _close_batch_trace(self, trace: Optional[Dict]) -> None:
        if trace is None:
            return
        records = [
            trace["records"][key]
            for key in trace["plan"]
            if key in trace["records"]
        ]
        records.append(
            {
                "span_id": trace["ctx"].parent_span_id,
                "parent_id": trace["parent_id"],
                "name": "engine_batch",
                "attrs": {"misses": trace["misses"]},
                "duration_seconds": round(
                    time.perf_counter() - trace["start"], 6
                ),
            }
        )
        self.tracer.graft(records)

    def _task_trace(
        self, trace: Optional[Dict], key: ConfigKey
    ) -> Optional[Tuple]:
        """The wire-form trace element for one pool task (or None)."""
        if trace is None:
            return None
        entry = trace["plan"].get(key)
        if entry is None:
            return None
        name, ordinal, count = entry
        return (trace["ctx"].as_tuple(), name, ordinal, count)

    def _stash_local_span(
        self, trace: Optional[Dict], key: ConfigKey, duration: float
    ) -> None:
        """Mint in-process the record a worker would have shipped."""
        entry = trace["plan"].get(key) if trace else None
        if entry is None or key in trace["records"]:
            return
        name, ordinal, count = entry
        trace["records"][key] = trace["ctx"].child_record(
            name,
            ordinal,
            attrs={"configs": count},
            duration_seconds=duration,
        )

    def _stash_worker_span(
        self, trace: Optional[Dict], key: ConfigKey, record: Optional[Dict]
    ) -> None:
        if trace is not None and record is not None:
            trace["records"].setdefault(key, record)

    def _publish_batch(self, before: "EngineStats") -> None:
        """Publish one ``engine_batch`` bus event for the stats delta
        accumulated since ``before`` (counter fields are deterministic;
        wall time rides along as a measured ``_seconds`` field)."""
        delta = self.stats.since(before)
        self.bus.publish(
            "engine_batch",
            configs_requested=delta.configs_requested,
            configs_simulated=delta.configs_simulated,
            cache_hits=delta.cache_hits,
            warm_starts=delta.warm_starts,
            passes_saved=delta.passes_saved,
            worker_failures=delta.worker_failures,
            retries=delta.retries,
            wall_seconds=round(delta.wall_time, 6),
        )

    def iter_simulate(self, configs: Sequence[AnnouncementConfig]):
        """Yield outcomes in schedule order *as they are computed*.

        Unlike :meth:`simulate_many`, consumers see the first
        configuration's catchments without waiting for the whole batch —
        the contract the live attribution runtime depends on.  With
        ``workers > 1`` the remaining misses keep simulating in the pool
        while early results are consumed; outcomes and stats are identical
        to :meth:`simulate_many` on the same batch.
        """
        configs = list(configs)
        if self.workers == 1 or len(configs) <= 1:
            for config in configs:
                yield self.simulate(config)
            return

        start = time.perf_counter()
        before = self.stats.copy() if self.bus is not None else None
        self.stats.configs_requested += len(configs)
        by_key: Dict[ConfigKey, RoutingOutcome] = {}
        misses: List[Tuple[ConfigKey, AnnouncementConfig]] = []
        pending = set()
        keys: List[ConfigKey] = []
        for config in configs:
            key = config.key()
            keys.append(key)
            if key in by_key or key in pending:
                self.stats.cache_hits += 1
                continue
            cached = self._cache_get(key)
            if cached is not None:
                self.stats.cache_hits += 1
                by_key[key] = cached
                continue
            pending.add(key)
            misses.append((key, config))

        results = None
        logical: Dict[ConfigKey, int] = {}
        trace: Optional[Dict] = None
        if misses:
            logical = self._logical_fixpoints(misses)
            trace = self._open_stream_trace(misses, logical)
        if misses and not self.breaker.open:
            pool = self._ensure_pool()
            tasks = [
                (
                    i,
                    config,
                    self._action_for(key),
                    self._parents_for_task(config),
                    self._stream_task_trace(trace, key),
                )
                for i, (key, config) in enumerate(misses)
            ]
            results = pool.imap_unordered(_worker_simulate, tasks)
        miss_configs = dict(misses)
        self.stats.wall_time += time.perf_counter() - start

        for key in keys:
            while key not in by_key:
                wait_start = time.perf_counter()
                if results is not None:
                    try:
                        (
                            index,
                            outcome,
                            fixpoints,
                            warms,
                            saved,
                            new_parents,
                            span_record,
                        ) = self._next_result(results)
                    except Exception as exc:
                        # Broken pool mid-stream: drop it and finish the
                        # outstanding misses serially (identical results).
                        self._handle_pool_failure(repr(exc))
                        results = None
                        self.stats.wall_time += (
                            time.perf_counter() - wait_start
                        )
                        continue
                    waited = time.perf_counter() - wait_start
                    self.stats.wall_time += waited
                    self.stats.queue_wait += waited
                    miss_key = misses[index][0]
                    self._absorb_parents(new_parents)
                    self._stash_stream_span(trace, miss_key, span_record)
                    count = logical[miss_key]
                    self.stats.configs_simulated += count
                    self.stats.redundant_parent_sims += fixpoints - count
                    if count > 0:
                        self.stats.warm_starts += warms
                        self.stats.passes_saved += saved
                    self._cache_put(miss_key, outcome)
                    by_key[miss_key] = outcome
                else:
                    already = self._cache_get(key)
                    if already is not None:
                        # Simulated en passant as a warm-start parent (or
                        # absorbed from a worker before the pool broke).
                        by_key[key] = already
                        self._charge_cached(key, miss_configs[key], logical)
                        self._stash_stream_span(trace, key, None)
                        self.stats.wall_time += (
                            time.perf_counter() - wait_start
                        )
                        continue
                    sim_start = time.perf_counter()
                    outcome, fixpoints, warms, saved = (
                        self._simulate_resilient(key, miss_configs[key])
                    )
                    self._stash_stream_span(
                        trace, key, None,
                        duration=time.perf_counter() - sim_start,
                    )
                    self.stats.wall_time += time.perf_counter() - wait_start
                    count = logical.get(key, fixpoints)
                    self.stats.configs_simulated += count
                    self.stats.redundant_parent_sims += fixpoints - count
                    self.stats.warm_starts += warms
                    self.stats.passes_saved += saved
                    self._cache_put(key, outcome)
                    by_key[key] = outcome
            self._graft_stream_span(trace, key)
            yield by_key[key]
        if before is not None:
            self._publish_batch(before)

    def _open_stream_trace(
        self,
        misses: List[Tuple[ConfigKey, AnnouncementConfig]],
        logical: Dict[ConfigKey, int],
    ) -> Optional[Dict]:
        """Per-miss ``engine_batch`` spans for the streaming path.

        ``iter_simulate`` with one worker degenerates to one
        :meth:`simulate` call per configuration — a single-miss
        ``engine_batch`` span each.  The pooled path must mint the same
        tree, so every charged miss gets its own batch span here
        (ordinals consumed in batch order), and records are grafted only
        when their configuration is *yielded* — an abandoned stream
        grafts exactly what the serial path would have.
        """
        if self.tracer is None or not misses:
            return None
        parent = self.tracer.current
        plan: Dict[ConfigKey, Dict] = {}
        all_links = self.simulator.origin.link_ids
        for key, config in misses:
            count = logical[key]
            if count == 0:
                continue
            ordinal = parent._child_ordinals.get("engine_batch", 0)
            parent._child_ordinals["engine_batch"] = ordinal + 1
            batch_id = _derive_span_id(
                parent.span_id, "engine_batch", ordinal
            )
            name = "simulate"
            if (
                self.warm_start
                and warm_start_parent(config, all_links) is not None
            ):
                name = "warm_start"
            plan[key] = {
                "ctx": TraceContext(
                    parent_span_id=batch_id, run_name=self.tracer.root.name
                ),
                "parent_id": parent.span_id,
                "name": name,
                "count": count,
            }
        return {"plan": plan, "records": {}}

    def _stream_task_trace(
        self, trace: Optional[Dict], key: ConfigKey
    ) -> Optional[Tuple]:
        if trace is None:
            return None
        entry = trace["plan"].get(key)
        if entry is None:
            return None
        return (entry["ctx"].as_tuple(), entry["name"], 0, entry["count"])

    def _stash_stream_span(
        self,
        trace: Optional[Dict],
        key: ConfigKey,
        record: Optional[Dict],
        duration: float = 0.0,
    ) -> None:
        """Hold a miss's span record until its configuration is yielded."""
        if trace is None:
            return
        entry = trace["plan"].get(key)
        if entry is None or key in trace["records"]:
            return
        if record is None:
            record = entry["ctx"].child_record(
                entry["name"],
                0,
                attrs={"configs": entry["count"]},
                duration_seconds=duration,
            )
        trace["records"][key] = record

    def _graft_stream_span(self, trace: Optional[Dict], key: ConfigKey) -> None:
        """Graft a yielded miss's child + batch spans (child first)."""
        if trace is None:
            return
        entry = trace["plan"].get(key)
        record = trace["records"].pop(key, None) if entry else None
        if record is None:
            return
        self.tracer.graft(
            [
                record,
                {
                    "span_id": entry["ctx"].parent_span_id,
                    "parent_id": entry["parent_id"],
                    "name": "engine_batch",
                    "attrs": {"misses": 1},
                    "duration_seconds": record.get("duration_seconds", 0.0),
                },
            ]
        )

    def _fault_ordinal(self, key: ConfigKey) -> int:
        """Stable per-engine ordinal of a distinct simulation (chaos
        windows count "the Nth new configuration this engine saw")."""
        ordinal = self._fault_ordinals.get(key)
        if ordinal is None:
            ordinal = len(self._fault_ordinals)
            self._fault_ordinals[key] = ordinal
        return ordinal

    def _action_for(
        self, key: ConfigKey, attempt: int = 0
    ) -> Optional[FaultAction]:
        """Chaos decision for one task (None without an injector)."""
        if self.injector is None:
            return None
        return self.injector.simulation_action(
            self._fault_ordinal(key), str(key), attempt
        )

    def _simulate_resilient(
        self, key: ConfigKey, config: AnnouncementConfig
    ) -> Tuple[RoutingOutcome, int, int, int]:
        """Simulate in-process, containing injected faults by retrying.

        Injected crashes are retried up to ``retry_policy.max_retries``
        times with deterministic exponential backoff (each attempt
        re-draws the fault decision, so sub-certain crash rates clear);
        a fault that survives the whole budget runs once more with
        injection suppressed — progress is guaranteed.  Real simulator
        exceptions propagate: they are bugs, not chaos.
        """
        attempt = 0
        while True:
            action = self._action_for(key, attempt)
            try:
                if action is not None:
                    action.execute()
                return _simulate_resolved(
                    self.simulator,
                    config,
                    self.warm_start,
                    self._cache_get,
                    self._record_parent,
                )
            except InjectedFault:
                if attempt >= self.retry_policy.max_retries:
                    self.stats.faults_bypassed += 1
                    assert self.injector is not None
                    with self.injector.suppressed():
                        return _simulate_resolved(
                            self.simulator,
                            config,
                            self.warm_start,
                            self._cache_get,
                            self._record_parent,
                        )
                self.stats.retries += 1
                self.retry_policy.sleep_before(attempt)
                attempt += 1

    def _run_serial(
        self,
        misses: List[Tuple[ConfigKey, AnnouncementConfig]],
        by_key: Dict[ConfigKey, RoutingOutcome],
        logical: Optional[Dict[ConfigKey, int]] = None,
        trace: Optional[Dict] = None,
    ) -> None:
        """Run misses in-process.

        With ``logical`` (the fallback path of a parallel batch),
        fixpoints are charged at the pre-computed logical count so the
        totals stay identical to a pure serial run even when the batch
        finishes half-pool, half-serial; without it (pure serial mode)
        physical counts *are* the logical counts.  Span records follow
        the trace plan either way, so the grafted tree matches a pooled
        run's exactly.
        """
        for key, config in misses:
            already = self._cache_get(key)
            if already is not None:
                # Simulated en passant as a warm-start parent of an
                # earlier miss in this batch (or absorbed from a worker
                # before the pool broke).
                by_key[key] = already
                if logical is not None:
                    self._charge_cached(key, config, logical)
                self._stash_local_span(trace, key, 0.0)
                continue
            sim_start = time.perf_counter()
            outcome, fixpoints, warms, saved = self._simulate_resilient(
                key, config
            )
            self._stash_local_span(
                trace, key, time.perf_counter() - sim_start
            )
            if logical is not None:
                count = logical.get(key, fixpoints)
                self.stats.configs_simulated += count
                self.stats.redundant_parent_sims += fixpoints - count
            else:
                self.stats.configs_simulated += fixpoints
            self.stats.warm_starts += warms
            self.stats.passes_saved += saved
            self._cache_put(key, outcome)
            by_key[key] = outcome

    def _record_parent(self, key: ConfigKey, outcome: RoutingOutcome) -> None:
        # Parents simulated on demand are full-fledged results: cache
        # them so the schedule (which usually contains them) hits.
        self._cache_put(key, outcome)

    def _logical_fixpoints(
        self, misses: List[Tuple[ConfigKey, AnnouncementConfig]]
    ) -> Dict[ConfigKey, int]:
        """Per-miss fixpoint counts as the equivalent serial run charges.

        Walks the misses in batch order against a simulated cache (the
        real cache's keys plus everything the serial run would have
        stored along the way): a miss already "cached" costs 0 (served
        en passant), otherwise 1 plus each warm-start ancestor not yet
        seen.  The per-key values depend only on the batch and the cache
        contents at entry — never on pool scheduling — so charging them
        makes ``configs_simulated`` identical at any worker count.
        """
        logical: Dict[ConfigKey, int] = {}
        seen = set(self._cache.keys())
        all_links = self.simulator.origin.link_ids
        for key, config in misses:
            if key in seen:
                logical[key] = 0
                continue
            count = 1
            if self.warm_start:
                node = config
                while True:
                    parent = warm_start_parent(node, all_links)
                    if parent is None:
                        break
                    parent_key = parent.key()
                    if parent_key in seen:
                        break
                    seen.add(parent_key)
                    count += 1
                    node = parent
            seen.add(key)
            logical[key] = count
        return logical

    def _parents_for_task(
        self, config: AnnouncementConfig
    ) -> Tuple[Tuple[ConfigKey, RoutingOutcome], ...]:
        """The nearest already-cached warm-start ancestor, for shipping.

        Seeding the worker's parent cache with it skips the physical
        re-simulation the worker would otherwise pay; outcomes are
        unchanged either way (a parent outcome is itself deterministic).
        """
        if not self.warm_start:
            return ()
        all_links = self.simulator.origin.link_ids
        node = config
        while True:
            parent = warm_start_parent(node, all_links)
            if parent is None:
                return ()
            parent_key = parent.key()
            outcome = self._cache_get(parent_key)
            if outcome is not None:
                return ((parent_key, outcome),)
            node = parent

    def _absorb_parents(
        self, new_parents: Tuple[Tuple[ConfigKey, RoutingOutcome], ...]
    ) -> None:
        """Cache parents a worker had to simulate itself (mirrors the
        serial path's ``_record_parent``), so later batches hit."""
        for parent_key, parent_outcome in new_parents:
            if parent_key not in self._cache:
                self._cache_put(parent_key, parent_outcome)

    def _charge_cached(
        self,
        key: ConfigKey,
        config: AnnouncementConfig,
        logical: Dict[ConfigKey, int],
    ) -> None:
        """Stats for a miss served from cache during a fallback re-run.

        The serial reference run would have simulated it directly when
        ``logical[key] > 0``; charge that count (and the warm start the
        direct simulation would have recorded) so totals still match.
        """
        count = logical.get(key, 0)
        if count == 0:
            return
        self.stats.configs_simulated += count
        self.stats.redundant_parent_sims -= count
        if not self.warm_start:
            return
        parent = warm_start_parent(config, self.simulator.origin.link_ids)
        if parent is None:
            return
        self.stats.warm_starts += 1
        parent_outcome = self._cache.get(parent.key())
        outcome = self._cache.get(key)
        if parent_outcome is not None and outcome is not None:
            self.stats.passes_saved += max(
                0, parent_outcome.passes - outcome.passes
            )

    def _next_result(self, results):
        """One pool result, honoring the per-task timeout when set."""
        timeout = self.retry_policy.task_timeout
        if timeout is None:
            return next(results)
        return results.next(timeout)

    def _handle_pool_failure(self, reason: str = "") -> None:
        """Account a broken pool and tear it down (rebuilt lazily)."""
        self.stats.worker_failures += 1
        self.stats.pool_rebuilds += 1
        if reason:
            self.stats.last_worker_error = reason
        self.breaker.record_failure()
        self._discard_pool()

    def _run_parallel(
        self,
        misses: List[Tuple[ConfigKey, AnnouncementConfig]],
        by_key: Dict[ConfigKey, RoutingOutcome],
        trace: Optional[Dict] = None,
    ) -> None:
        if self.breaker.open:
            self._run_serial(misses, by_key, trace=trace)
            return
        logical = self._logical_fixpoints(misses)
        pool = self._ensure_pool()
        batch_size = self.dispatch_batch or max(
            1, math.ceil(len(misses) / (self.workers * 2))
        )
        tasks = [
            (
                i,
                config,
                self._action_for(key),
                self._parents_for_task(config),
                self._task_trace(trace, key),
            )
            for i, (key, config) in enumerate(misses)
        ]
        batches = [
            tuple(tasks[start : start + batch_size])
            for start in range(0, len(tasks), batch_size)
        ]
        results = pool.imap_unordered(_worker_simulate_batch, batches)
        try:
            for _ in range(len(batches)):
                wait_start = time.perf_counter()
                group = self._next_result(results)
                self.stats.queue_wait += time.perf_counter() - wait_start
                for (
                    index,
                    outcome,
                    fixpoints,
                    warms,
                    saved,
                    new_parents,
                    span_record,
                ) in group:
                    key = misses[index][0]
                    self._absorb_parents(new_parents)
                    self._stash_worker_span(trace, key, span_record)
                    count = logical[key]
                    self.stats.configs_simulated += count
                    self.stats.redundant_parent_sims += fixpoints - count
                    if count > 0:
                        self.stats.warm_starts += warms
                        self.stats.passes_saved += saved
                    self._cache_put(key, outcome)
                    by_key[key] = outcome
        except Exception as exc:
            # A worker died, raised, or timed out (injected or real).
            # The pool may hold poisoned or hung workers: replace it and
            # finish the outstanding work serially — results identical,
            # only slower.
            self._handle_pool_failure(repr(exc))
            remaining = [
                (key, config) for key, config in misses if key not in by_key
            ]
            self._run_serial(remaining, by_key, logical=logical, trace=trace)
        else:
            self.breaker.record_success()

    # -- pool lifecycle -------------------------------------------------

    def _ensure_pool(self):
        if self._pool is None:
            import multiprocessing

            payload = self.spec if self.spec is not None else self.simulator
            self._pool = multiprocessing.Pool(
                processes=self.workers,
                initializer=_init_worker,
                initargs=(payload, self.warm_start),
            )
        return self._pool

    def _discard_pool(self) -> None:
        """Terminate the current pool; a fresh one is built lazily."""
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None

    def close(self) -> None:
        """Tear down the worker pool (the cache survives)."""
        self._discard_pool()

    def __enter__(self) -> "SimulationEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - interpreter shutdown
        try:
            self.close()
        except Exception:
            pass
