"""End-to-end orchestration: build a testbed, run the paper's pipeline.

:func:`build_testbed` assembles every substrate (topology, origin, policy,
simulator, address plan, IXPs, feeds, probe fleet) from a single seed.
:class:`SpoofTracker` then runs the paper's workflow over it:

1. generate the three-phase announcement schedule (§III-A/§IV-a),
2. simulate (and optionally *measure*, via feeds + traceroutes) each
   configuration's catchments,
3. refine clusters across configurations (§III-B),
4. attribute observed spoofed volumes to clusters (§III-C / §V-D).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Dict, FrozenSet, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from ..live.service import LiveRunStats
    from ..obs import RunManifest
    from .refinement import SplitReport

from ..faults.health import InvariantMonitor, ResilienceReport, build_resilience_report
from ..faults.injection import FaultInjector
from ..faults.resilience import RetryPolicy

from ..bgp.announcement import AnnouncementConfig
from ..bgp.policy import PolicyModel
from ..bgp.simulator import RoutingOutcome, RoutingSimulator
from ..errors import ReproError
from ..measurement.atlas import AtlasProbeFleet, select_probe_ases
from ..measurement.campaign import MeasurementCampaign
from ..measurement.catchment import CatchmentHistory
from ..measurement.collectors import BGPCollectorSet, select_vantages
from ..measurement.ip2as import AddressPlan, IPToASMapper
from ..measurement.ixp import IXPRegistry, synthesize_ixps
from ..measurement.traceroute import TracerouteEngine, TracerouteParams
from ..obs import Observability, record_engine_stats, record_fault_log
from ..spoof.sources import SourcePlacement
from ..spoof.traffic import link_volumes
from ..topology.generator import GeneratedTopology, TopologyParams, generate_topology
from ..topology.graph import ASGraph
from ..topology.peering import OriginNetwork, attach_origin
from ..types import ASN, Catchment, LinkId
from .clustering import ClusterState
from .configgen import ScheduleParams, generate_schedule
from .engine import EngineStats, SimulationEngine
from .localization import LocalizationResult, SpoofLocalizer


@dataclass
class Testbed:
    """Every substrate needed to reproduce the paper's experiments."""

    topology: GeneratedTopology
    origin: OriginNetwork
    policy: PolicyModel
    simulator: RoutingSimulator
    plan: AddressPlan
    ixps: IXPRegistry
    mapper: IPToASMapper
    collectors: BGPCollectorSet
    fleet: AtlasProbeFleet
    campaign: MeasurementCampaign
    #: Construction recipe (when built by :func:`build_testbed`); lets
    #: :class:`~repro.core.engine.SimulationEngine` workers rebuild the
    #: simulator cheaply instead of pickling the whole object graph.
    spec: Optional["TestbedSpec"] = None

    @property
    def graph(self) -> ASGraph:
        """The AS topology graph (origin attached)."""
        return self.topology.graph


@dataclass(frozen=True)
class TestbedSpec:
    """Picklable recipe for :func:`build_testbed`.

    Everything here is a value type (ints, floats, frozen dataclasses),
    so shipping a spec to a worker process costs bytes, and rebuilding is
    deterministic: ``spec.build()`` in any process yields a testbed whose
    simulator is bit-identical to the original.
    """

    seed: int = 0
    topology_params: Optional[TopologyParams] = None
    num_links: int = 7
    policy_noise: float = 0.05
    loop_prevention_disabled_fraction: float = 0.02
    num_vantages: int = 25
    num_probes: int = 120
    traceroute_params: Optional[TracerouteParams] = None
    rounds_per_config: int = 3
    with_geography: bool = False

    def build(self) -> "Testbed":
        """Rebuild the full testbed this spec describes."""
        return build_testbed(
            seed=self.seed,
            topology_params=self.topology_params,
            num_links=self.num_links,
            policy_noise=self.policy_noise,
            loop_prevention_disabled_fraction=self.loop_prevention_disabled_fraction,
            num_vantages=self.num_vantages,
            num_probes=self.num_probes,
            traceroute_params=self.traceroute_params,
            rounds_per_config=self.rounds_per_config,
            with_geography=self.with_geography,
        )

    def build_simulator(self) -> RoutingSimulator:
        """Rebuild only the routing substrate (what pool workers need)."""
        _, _, _, simulator = _build_routing_substrate(self)
        return simulator


def _build_routing_substrate(
    spec: TestbedSpec,
) -> Tuple[GeneratedTopology, OriginNetwork, PolicyModel, RoutingSimulator]:
    """Topology + origin + policy + simulator from a spec (shared by
    :func:`build_testbed` and :meth:`TestbedSpec.build_simulator`)."""
    params = spec.topology_params or TopologyParams(seed=spec.seed)
    if params.seed != spec.seed:
        params = replace(params, seed=spec.seed)
    topology = generate_topology(params)
    origin = attach_origin(topology, num_links=spec.num_links, seed=spec.seed)
    graph = topology.graph
    geography = None
    if spec.with_geography:
        from ..topology.geography import GeographyModel

        geography = GeographyModel.random(graph.ases, seed=spec.seed)
    policy = PolicyModel(
        graph,
        seed=spec.seed,
        policy_noise=spec.policy_noise,
        loop_prevention_disabled_fraction=spec.loop_prevention_disabled_fraction,
        geography=geography,
    )
    simulator = RoutingSimulator(graph, origin, policy)
    return topology, origin, policy, simulator


def build_testbed(
    seed: int = 0,
    topology_params: Optional[TopologyParams] = None,
    num_links: int = 7,
    policy_noise: float = 0.05,
    loop_prevention_disabled_fraction: float = 0.02,
    num_vantages: int = 25,
    num_probes: int = 120,
    traceroute_params: Optional[TracerouteParams] = None,
    rounds_per_config: int = 3,
    with_geography: bool = False,
) -> Testbed:
    """Build a fully wired testbed from one seed.

    Defaults give a PEERING-scale setup: 7 peering links, collector and
    probe coverage proportional to the paper's (all public feeds, 1,600
    Atlas probes over a ~70k-AS Internet ≈ a few percent of ASes).

    With ``with_geography=True`` every AS is assigned a region and ties
    between equally-preferred routes resolve hot-potato (toward the
    geographically closest neighbor) instead of by arbitrary router state.
    """
    spec = TestbedSpec(
        seed=seed,
        topology_params=topology_params,
        num_links=num_links,
        policy_noise=policy_noise,
        loop_prevention_disabled_fraction=loop_prevention_disabled_fraction,
        num_vantages=num_vantages,
        num_probes=num_probes,
        traceroute_params=traceroute_params,
        rounds_per_config=rounds_per_config,
        with_geography=with_geography,
    )
    topology, origin, policy, simulator = _build_routing_substrate(spec)
    graph = topology.graph
    plan = AddressPlan(graph.ases, origin.asn)
    ixps = synthesize_ixps(graph, seed=seed)
    mapper = IPToASMapper(plan, ixps.prefixes())
    engine = TracerouteEngine(
        graph,
        plan,
        ixps,
        traceroute_params or TracerouteParams(seed=seed),
    )
    vantages = select_vantages(graph, num_vantages, seed=seed, exclude=[origin.asn])
    collectors = BGPCollectorSet(vantages, origin)
    probe_ases = select_probe_ases(graph, num_probes, seed=seed + 1, exclude=[origin.asn])
    fleet = AtlasProbeFleet(probe_ases, engine, rounds_per_config=rounds_per_config)
    campaign = MeasurementCampaign(origin, collectors, fleet, mapper)
    return Testbed(
        topology=topology,
        origin=origin,
        policy=policy,
        simulator=simulator,
        plan=plan,
        ixps=ixps,
        mapper=mapper,
        collectors=collectors,
        fleet=fleet,
        campaign=campaign,
        spec=spec,
    )


@dataclass(frozen=True)
class StepStats:
    """Cluster statistics after deploying one configuration."""

    config_label: str
    phase: str
    num_clusters: int
    mean_cluster_size: float
    p90_cluster_size: float


@dataclass
class TrackerReport:
    """Everything :meth:`SpoofTracker.run` produced.

    Attributes:
        universe: sources analyzed (observed under the first anycast).
        steps: per-configuration cluster statistics.
        clusters: final partition, largest cluster first.
        catchment_history: per-configuration catchment maps used for
            clustering (measured+imputed in measured mode, ground truth
            otherwise).
        localization: volume attribution (when a placement was given).
        placement: the ground-truth placement (when given).
        measured: whether catchments came from feeds/traceroutes.
        engine_stats: simulation-engine counters for this run (configs
            simulated, cache hits, warm-start savings, wall time).
        live_stats: online-runtime counters when the report came from a
            :class:`~repro.live.service.LiveTracebackService` replay
            (windows observed, dropped volume, dwell, stop reason).
        resilience: chaos accounting and invariant-check outcomes when
            the run carried a fault injector.
        manifest: frozen run inputs + environment
            (:class:`~repro.obs.manifest.RunManifest`) when the run was
            launched through an instrumented entry point.
        strategy: registry name of the traceback strategy that planned
            the deployment order, when one did (None = schedule order).
    """

    universe: FrozenSet[ASN]
    steps: List[StepStats]
    clusters: List[FrozenSet[ASN]]
    catchment_history: List[Dict[LinkId, Catchment]]
    localization: Optional[LocalizationResult] = None
    placement: Optional[SourcePlacement] = None
    measured: bool = False
    split_report: Optional["SplitReport"] = None
    engine_stats: Optional[EngineStats] = None
    live_stats: Optional["LiveRunStats"] = None
    resilience: Optional["ResilienceReport"] = None
    manifest: Optional["RunManifest"] = None
    strategy: Optional[str] = None

    @property
    def mean_cluster_size(self) -> float:
        """Final mean cluster size (paper headline: 1.40 ASes)."""
        return len(self.universe) / len(self.clusters)

    @property
    def singleton_cluster_fraction(self) -> float:
        """Final fraction of single-AS clusters (paper headline: 92%)."""
        singles = sum(1 for cluster in self.clusters if len(cluster) == 1)
        return singles / len(self.clusters)

    def summary(self) -> str:
        """Multi-line human-readable report."""
        lines = [
            f"configurations deployed : {len(self.steps)}",
            f"sources analyzed        : {len(self.universe)} ASes"
            + (" (measured catchments)" if self.measured else " (ground truth)"),
            f"final clusters          : {len(self.clusters)}",
            f"mean cluster size       : {self.mean_cluster_size:.2f} ASes",
            f"singleton clusters      : {self.singleton_cluster_fraction:.0%}",
        ]
        if self.engine_stats is not None:
            lines.append(f"simulation engine       : {self.engine_stats.summary()}")
        if self.live_stats is not None:
            lines.append(f"live runtime            : {self.live_stats.summary()}")
        if self.resilience is not None:
            lines.append(f"resilience              : {self.resilience.summary()}")
        if self.localization is not None:
            top = self.localization.top(3)
            lines.append("most-suspect clusters   :")
            for cluster in top:
                members = ", ".join(str(asn) for asn in sorted(cluster.members)[:6])
                suffix = ", …" if cluster.size > 6 else ""
                lines.append(
                    f"  volume={cluster.estimated_volume:8.3f}"
                    f"  size={cluster.size:3d}  [{members}{suffix}]"
                )
            if self.placement is not None:
                quality = self.localization.evaluate_against(self.placement)
                lines.append(
                    f"localization quality    : recall={quality.recall:.0%} "
                    f"precision={quality.precision:.0%} "
                    f"({quality.sources_found}/{quality.true_sources} sources in "
                    f"{quality.suspect_set_size} suspect ASes)"
                )
        return "\n".join(lines)


class SpoofTracker:
    """The paper's system: schedule, measure, cluster, attribute.

    Args:
        testbed: a wired testbed from :func:`build_testbed`.
        schedule_params: announcement-generation knobs (§IV-a defaults).
        engine: simulation engine to deploy configurations through.  By
            default a serial caching engine is built over the testbed's
            simulator; pass an engine with ``workers > 1`` (or use the
            ``workers`` shorthand) to fan simulations out over processes.
        workers: shorthand for building the default engine with this many
            worker processes (ignored when ``engine`` is given).
        injector: optional :class:`~repro.faults.injection.FaultInjector`
            driving a chaos run; threaded into the engine, the
            measurement campaign, and the ground-truth catchments.
        retry_policy: containment knobs for the default engine (ignored
            when ``engine`` is given).
        obs: optional :class:`~repro.obs.Observability` bundle; when
            armed, the run emits one span per pipeline phase (schedule,
            simulate, measure, cluster, attribute) and folds engine /
            campaign / fault counters into the bundle's registry.
    """

    def __init__(
        self,
        testbed: Testbed,
        schedule_params: Optional[ScheduleParams] = None,
        engine: Optional[SimulationEngine] = None,
        workers: int = 1,
        injector: Optional[FaultInjector] = None,
        retry_policy: Optional[RetryPolicy] = None,
        obs: Optional[Observability] = None,
    ) -> None:
        self.testbed = testbed
        self.obs = obs if obs is not None else Observability()
        self.schedule_params = schedule_params or ScheduleParams()
        with self.obs.phase("schedule") as span:
            self.schedule: List[AnnouncementConfig] = generate_schedule(
                testbed.origin, testbed.graph, self.schedule_params
            )
            if span is not None:
                span.set("configs", len(self.schedule))
        self.engine = engine or SimulationEngine(
            testbed.simulator,
            workers=workers,
            spec=testbed.spec,
            injector=injector,
            retry_policy=retry_policy,
            bus=self.obs.bus,
            tracer=self.obs.tracer,
        )
        self.injector = (
            injector if injector is not None else self.engine.injector
        )

    @classmethod
    def from_testbed(
        cls, testbed: Testbed, schedule_params: Optional[ScheduleParams] = None
    ) -> "SpoofTracker":
        """Alias constructor used throughout the examples."""
        return cls(testbed, schedule_params)

    # ------------------------------------------------------------------

    def run(
        self,
        max_configs: Optional[int] = None,
        placement: Optional[SourcePlacement] = None,
        measured: bool = False,
        split_threshold: Optional[int] = None,
        split_budget: int = 30,
        strategy: Optional[str] = None,
    ) -> TrackerReport:
        """Deploy the schedule and build the report.

        Args:
            max_configs: deploy only the first N configurations (the full
                paper schedule is 705 and takes a while on big topologies).
            placement: ground-truth spoofing sources; when given, per-link
                volumes are observed every configuration and attributed to
                the final clusters.
            measured: measure catchments with feeds and traceroutes
                (slower, noisy) instead of reading them off the simulator.
            split_threshold: when set (and not in measured mode), run the
                §V-B large-cluster splitter afterwards, deploying targeted
                distant-poison configurations against clusters larger
                than the threshold.
            split_budget: extra configurations the splitter may deploy.
            strategy: registry name of a traceback strategy
                (:func:`repro.strategy.available_strategies`) to plan the
                deployment order from the measured catchments, §V-C
                pre-attack style; the strategy may stop short of the full
                schedule once nothing more can split.  None (or any
                strategy that deploys in schedule order, like
                ``"schedule"``) keeps the historical schedule-order run
                untouched.
        """
        limit = len(self.schedule) if max_configs is None else max_configs
        configs = self.schedule[:limit]
        if not configs:
            raise ReproError("empty schedule")

        origin = self.testbed.origin
        injector = self.injector
        obs = self.obs
        registry = obs.registry
        stats_before = self.engine.stats.copy()
        with obs.phase("simulate", configs=len(configs)) as span:
            with obs.capture():
                outcomes: List[RoutingOutcome] = self.engine.simulate_many(
                    configs
                )
            if span is not None:
                delta = self.engine.stats.since(stats_before)
                span.set("configs_simulated", delta.configs_simulated)
                span.set("cache_hits", delta.cache_hits)

        # Per-step sets of links whose catchments are partial (injected
        # measurement loss); refinement skips them, localization drops
        # the whole step.
        degraded_by_step: List[FrozenSet[LinkId]] = []
        with obs.phase(
            "measure", mode="measured" if measured else "ground-truth"
        ) as span:
            if measured:
                first = self.testbed.campaign.measure(
                    outcomes[0], fault_token=0, injector=injector,
                    registry=registry,
                )
                universe = frozenset(first.assignment)
                history = CatchmentHistory(universe)
                history.add(first.assignment)
                for index, outcome in enumerate(outcomes[1:], start=1):
                    history.add(
                        self.testbed.campaign.measure(
                            outcome, fault_token=index, injector=injector,
                            registry=registry,
                        ).assignment
                    )
                catchment_history = history.catchment_maps(origin.link_ids)
                degraded_by_step = [frozenset() for _ in catchment_history]
            else:
                universe = outcomes[0].covered_ases
                catchment_history = []
                for index, outcome in enumerate(outcomes):
                    maps = {
                        link: frozenset(members & universe)
                        for link, members in outcome.catchments.items()
                    }
                    if injector is not None:
                        maps, degraded = injector.degrade_catchments(index, maps)
                    else:
                        degraded = frozenset()
                    catchment_history.append(maps)
                    degraded_by_step.append(degraded)
            if span is not None:
                span.set("universe", len(universe))
                span.set("steps", len(catchment_history))

        strategy_name = strategy
        if strategy_name is not None:
            from ..strategy import make_strategy, run_strategy, strategy_class

            if strategy_class(strategy_name).deploys_in_schedule_order:
                # The plan *is* the schedule — skip the planning pass so
                # the default path stays byte-for-byte the historical run.
                strategy_name = None
            else:
                with obs.phase("plan", strategy=strategy_name) as span:
                    # Degraded links are lossy evidence; the planner must
                    # not order the campaign around catchments that the
                    # cluster phase will then refuse to refine with.
                    planning_maps = [
                        {
                            link: members
                            for link, members in maps.items()
                            if link not in degraded
                        }
                        for maps, degraded in zip(
                            catchment_history, degraded_by_step
                        )
                    ]
                    seed = (
                        self.testbed.spec.seed
                        if self.testbed.spec is not None
                        else 0
                    )
                    plan = run_strategy(
                        make_strategy(strategy_name, seed=seed),
                        sorted(universe),
                        planning_maps,
                        schedule=configs,
                    )
                    order = plan.order
                    configs = [configs[i] for i in order]
                    outcomes = [outcomes[i] for i in order]
                    catchment_history = [catchment_history[i] for i in order]
                    degraded_by_step = [degraded_by_step[i] for i in order]
                    if span is not None:
                        span.set("planned", len(order))
                        span.set("stop", plan.stop_reason)

        with obs.phase("cluster") as span:
            state = ClusterState(universe)
            steps: List[StepStats] = []
            for (config, catchments), degraded in zip(
                zip(configs, catchment_history), degraded_by_step
            ):
                state.refine_with_catchments(
                    catchments, degraded_links=degraded
                )
                steps.append(
                    StepStats(
                        config_label=config.label or config.describe(),
                        phase=config.phase,
                        num_clusters=state.num_clusters(),
                        mean_cluster_size=state.mean_size(),
                        p90_cluster_size=state.size_percentile(90.0),
                    )
                )
            split_report = None
            if split_threshold is not None and not measured:
                from .refinement import LargeClusterSplitter

                splitter = LargeClusterSplitter(
                    self.testbed.simulator,
                    origin,
                    threshold=split_threshold,
                    engine=self.engine,
                )
                split_report = splitter.split(state, max_configs=split_budget)
                # The splitter refines ``state`` in place; per-config cluster
                # statistics come from its snapshots, taken right after each
                # deployed configuration (recomputing them here would just
                # repeat the final state for every step).
                for config, extra, snapshot in zip(
                    split_report.configs_deployed,
                    split_report.catchment_history,
                    split_report.snapshots,
                ):
                    catchment_history.append(
                        {
                            link: frozenset(members & universe)
                            for link, members in extra.items()
                        }
                    )
                    degraded_by_step.append(frozenset())
                    steps.append(
                        StepStats(
                            config_label=config.label or config.describe(),
                            phase="split",
                            num_clusters=snapshot.num_clusters,
                            mean_cluster_size=snapshot.mean_cluster_size,
                            p90_cluster_size=snapshot.p90_cluster_size,
                        )
                    )
            clusters = state.clusters()
            if span is not None:
                span.set("clusters", len(clusters))
                span.set("steps", len(steps))

        monitor = InvariantMonitor() if injector is not None else None

        localization = None
        with obs.phase("attribute", skipped=placement is None) as span:
            if placement is not None:
                volume_history = [
                    link_volumes(placement, outcome.catchments)
                    for outcome in outcomes
                ]
                if split_report is not None:
                    volume_history.extend(
                        link_volumes(placement, extra)
                        for extra in split_report.catchment_history
                    )
                if monitor is not None:
                    for volumes in volume_history:
                        monitor.check_volume_conservation(
                            volumes.offered,
                            volumes.attributed,
                            volumes.unattributed,
                        )
                # Degraded steps are lossy evidence: a partial catchment can
                # straddle final clusters, which the NNLS system rejects, so
                # those rows are excluded from localization outright.
                loc_catchments = [
                    maps
                    for maps, degraded in zip(
                        catchment_history, degraded_by_step
                    )
                    if not degraded
                ]
                loc_volumes = [
                    volumes
                    for volumes, degraded in zip(
                        volume_history, degraded_by_step
                    )
                    if not degraded
                ]
                localizer = SpoofLocalizer(clusters, loc_catchments)
                with obs.capture():
                    localization = localizer.localize(loc_volumes)
                if span is not None:
                    span.set("volume_rows", len(loc_volumes))

        resilience = None
        if injector is not None:
            assert monitor is not None
            monitor.check_partition_coverage(universe, clusters)
            monitor.check_monotone_refinement(
                [step.num_clusters for step in steps]
            )
            resilience = build_resilience_report(
                injector,
                monitor=monitor,
                engine_stats=self.engine.stats.since(stats_before),
                degraded_configs=sum(1 for d in degraded_by_step if d),
                circuit_open=self.engine.breaker.open,
            )

        if registry is not None:
            record_engine_stats(
                registry, self.engine.stats.since(stats_before)
            )
            if injector is not None:
                record_fault_log(registry, injector.log.as_dict())
            registry.counter(
                "repro_pipeline_configs_deployed_total",
                help="configurations deployed (schedule + splitter)",
            ).inc(len(steps))
            registry.counter(
                "repro_pipeline_sources_total",
                help="source ASes analyzed",
            ).inc(len(universe))
            registry.counter(
                "repro_pipeline_clusters_total",
                help="final clusters in the partition",
            ).inc(len(clusters))
            registry.counter(
                "repro_pipeline_degraded_steps_total",
                help="steps with partial (degraded) catchments",
            ).inc(sum(1 for degraded in degraded_by_step if degraded))

        if obs.bus is not None:
            obs.bus.publish(
                "pipeline",
                steps=len(steps),
                degraded_steps=sum(1 for d in degraded_by_step if d),
                clusters=len(clusters),
                sources=len(universe),
                localized=localization is not None,
            )

        return TrackerReport(
            universe=universe,
            steps=steps,
            clusters=clusters,
            catchment_history=catchment_history,
            localization=localization,
            placement=placement,
            measured=measured,
            split_report=split_report,
            engine_stats=self.engine.stats.since(stats_before),
            resilience=resilience,
            strategy=strategy_name,
        )
