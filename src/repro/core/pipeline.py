"""End-to-end orchestration: build a testbed, run the paper's pipeline.

:func:`build_testbed` assembles every substrate (topology, origin, policy,
simulator, address plan, IXPs, feeds, probe fleet) from a single seed.
:class:`SpoofTracker` then runs the paper's workflow over it:

1. generate the three-phase announcement schedule (§III-A/§IV-a),
2. simulate (and optionally *measure*, via feeds + traceroutes) each
   configuration's catchments,
3. refine clusters across configurations (§III-B),
4. attribute observed spoofed volumes to clusters (§III-C / §V-D).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, FrozenSet, List, Optional

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from .refinement import SplitReport

from ..bgp.announcement import AnnouncementConfig
from ..bgp.policy import PolicyModel
from ..bgp.simulator import RoutingOutcome, RoutingSimulator
from ..errors import ReproError
from ..measurement.atlas import AtlasProbeFleet, select_probe_ases
from ..measurement.campaign import MeasurementCampaign
from ..measurement.catchment import CatchmentHistory
from ..measurement.collectors import BGPCollectorSet, select_vantages
from ..measurement.ip2as import AddressPlan, IPToASMapper
from ..measurement.ixp import IXPRegistry, synthesize_ixps
from ..measurement.traceroute import TracerouteEngine, TracerouteParams
from ..spoof.sources import SourcePlacement
from ..spoof.traffic import link_volumes
from ..topology.generator import GeneratedTopology, TopologyParams, generate_topology
from ..topology.graph import ASGraph
from ..topology.peering import OriginNetwork, attach_origin
from ..types import ASN, Catchment, LinkId
from .clustering import ClusterState
from .configgen import ScheduleParams, generate_schedule
from .localization import LocalizationResult, SpoofLocalizer


@dataclass
class Testbed:
    """Every substrate needed to reproduce the paper's experiments."""

    topology: GeneratedTopology
    origin: OriginNetwork
    policy: PolicyModel
    simulator: RoutingSimulator
    plan: AddressPlan
    ixps: IXPRegistry
    mapper: IPToASMapper
    collectors: BGPCollectorSet
    fleet: AtlasProbeFleet
    campaign: MeasurementCampaign

    @property
    def graph(self) -> ASGraph:
        """The AS topology graph (origin attached)."""
        return self.topology.graph


def build_testbed(
    seed: int = 0,
    topology_params: Optional[TopologyParams] = None,
    num_links: int = 7,
    policy_noise: float = 0.05,
    loop_prevention_disabled_fraction: float = 0.02,
    num_vantages: int = 25,
    num_probes: int = 120,
    traceroute_params: Optional[TracerouteParams] = None,
    rounds_per_config: int = 3,
    with_geography: bool = False,
) -> Testbed:
    """Build a fully wired testbed from one seed.

    Defaults give a PEERING-scale setup: 7 peering links, collector and
    probe coverage proportional to the paper's (all public feeds, 1,600
    Atlas probes over a ~70k-AS Internet ≈ a few percent of ASes).

    With ``with_geography=True`` every AS is assigned a region and ties
    between equally-preferred routes resolve hot-potato (toward the
    geographically closest neighbor) instead of by arbitrary router state.
    """
    params = topology_params or TopologyParams(seed=seed)
    if params.seed != seed:
        params = TopologyParams(
            num_tier1=params.num_tier1,
            num_transit=params.num_transit,
            num_stub=params.num_stub,
            transit_provider_choices=params.transit_provider_choices,
            stub_provider_choices=params.stub_provider_choices,
            transit_peering_probability=params.transit_peering_probability,
            stub_multihome_fraction=params.stub_multihome_fraction,
            seed=seed,
        )
    topology = generate_topology(params)
    origin = attach_origin(topology, num_links=num_links, seed=seed)
    graph = topology.graph
    geography = None
    if with_geography:
        from ..topology.geography import GeographyModel

        geography = GeographyModel.random(graph.ases, seed=seed)
    policy = PolicyModel(
        graph,
        seed=seed,
        policy_noise=policy_noise,
        loop_prevention_disabled_fraction=loop_prevention_disabled_fraction,
        geography=geography,
    )
    simulator = RoutingSimulator(graph, origin, policy)
    plan = AddressPlan(graph.ases, origin.asn)
    ixps = synthesize_ixps(graph, seed=seed)
    mapper = IPToASMapper(plan, ixps.prefixes())
    engine = TracerouteEngine(
        graph,
        plan,
        ixps,
        traceroute_params or TracerouteParams(seed=seed),
    )
    vantages = select_vantages(graph, num_vantages, seed=seed, exclude=[origin.asn])
    collectors = BGPCollectorSet(vantages, origin)
    probe_ases = select_probe_ases(graph, num_probes, seed=seed + 1, exclude=[origin.asn])
    fleet = AtlasProbeFleet(probe_ases, engine, rounds_per_config=rounds_per_config)
    campaign = MeasurementCampaign(origin, collectors, fleet, mapper)
    return Testbed(
        topology=topology,
        origin=origin,
        policy=policy,
        simulator=simulator,
        plan=plan,
        ixps=ixps,
        mapper=mapper,
        collectors=collectors,
        fleet=fleet,
        campaign=campaign,
    )


@dataclass(frozen=True)
class StepStats:
    """Cluster statistics after deploying one configuration."""

    config_label: str
    phase: str
    num_clusters: int
    mean_cluster_size: float
    p90_cluster_size: float


@dataclass
class TrackerReport:
    """Everything :meth:`SpoofTracker.run` produced.

    Attributes:
        universe: sources analyzed (observed under the first anycast).
        steps: per-configuration cluster statistics.
        clusters: final partition, largest cluster first.
        catchment_history: per-configuration catchment maps used for
            clustering (measured+imputed in measured mode, ground truth
            otherwise).
        localization: volume attribution (when a placement was given).
        placement: the ground-truth placement (when given).
        measured: whether catchments came from feeds/traceroutes.
    """

    universe: FrozenSet[ASN]
    steps: List[StepStats]
    clusters: List[FrozenSet[ASN]]
    catchment_history: List[Dict[LinkId, Catchment]]
    localization: Optional[LocalizationResult] = None
    placement: Optional[SourcePlacement] = None
    measured: bool = False
    split_report: Optional["SplitReport"] = None

    @property
    def mean_cluster_size(self) -> float:
        """Final mean cluster size (paper headline: 1.40 ASes)."""
        return len(self.universe) / len(self.clusters)

    @property
    def singleton_cluster_fraction(self) -> float:
        """Final fraction of single-AS clusters (paper headline: 92%)."""
        singles = sum(1 for cluster in self.clusters if len(cluster) == 1)
        return singles / len(self.clusters)

    def summary(self) -> str:
        """Multi-line human-readable report."""
        lines = [
            f"configurations deployed : {len(self.steps)}",
            f"sources analyzed        : {len(self.universe)} ASes"
            + (" (measured catchments)" if self.measured else " (ground truth)"),
            f"final clusters          : {len(self.clusters)}",
            f"mean cluster size       : {self.mean_cluster_size:.2f} ASes",
            f"singleton clusters      : {self.singleton_cluster_fraction:.0%}",
        ]
        if self.localization is not None:
            top = self.localization.top(3)
            lines.append("most-suspect clusters   :")
            for cluster in top:
                members = ", ".join(str(asn) for asn in sorted(cluster.members)[:6])
                suffix = ", …" if cluster.size > 6 else ""
                lines.append(
                    f"  volume={cluster.estimated_volume:8.3f}"
                    f"  size={cluster.size:3d}  [{members}{suffix}]"
                )
            if self.placement is not None:
                quality = self.localization.evaluate_against(self.placement)
                lines.append(
                    f"localization quality    : recall={quality.recall:.0%} "
                    f"precision={quality.precision:.0%} "
                    f"({quality.sources_found}/{quality.true_sources} sources in "
                    f"{quality.suspect_set_size} suspect ASes)"
                )
        return "\n".join(lines)


class SpoofTracker:
    """The paper's system: schedule, measure, cluster, attribute.

    Args:
        testbed: a wired testbed from :func:`build_testbed`.
        schedule_params: announcement-generation knobs (§IV-a defaults).
    """

    def __init__(
        self, testbed: Testbed, schedule_params: Optional[ScheduleParams] = None
    ) -> None:
        self.testbed = testbed
        self.schedule_params = schedule_params or ScheduleParams()
        self.schedule: List[AnnouncementConfig] = generate_schedule(
            testbed.origin, testbed.graph, self.schedule_params
        )

    @classmethod
    def from_testbed(
        cls, testbed: Testbed, schedule_params: Optional[ScheduleParams] = None
    ) -> "SpoofTracker":
        """Alias constructor used throughout the examples."""
        return cls(testbed, schedule_params)

    # ------------------------------------------------------------------

    def run(
        self,
        max_configs: Optional[int] = None,
        placement: Optional[SourcePlacement] = None,
        measured: bool = False,
        split_threshold: Optional[int] = None,
        split_budget: int = 30,
    ) -> TrackerReport:
        """Deploy the schedule and build the report.

        Args:
            max_configs: deploy only the first N configurations (the full
                paper schedule is 705 and takes a while on big topologies).
            placement: ground-truth spoofing sources; when given, per-link
                volumes are observed every configuration and attributed to
                the final clusters.
            measured: measure catchments with feeds and traceroutes
                (slower, noisy) instead of reading them off the simulator.
            split_threshold: when set (and not in measured mode), run the
                §V-B large-cluster splitter afterwards, deploying targeted
                distant-poison configurations against clusters larger
                than the threshold.
            split_budget: extra configurations the splitter may deploy.
        """
        limit = len(self.schedule) if max_configs is None else max_configs
        configs = self.schedule[:limit]
        if not configs:
            raise ReproError("empty schedule")

        simulator = self.testbed.simulator
        origin = self.testbed.origin
        outcomes: List[RoutingOutcome] = [
            simulator.simulate(config) for config in configs
        ]

        if measured:
            first = self.testbed.campaign.measure(outcomes[0])
            universe = frozenset(first.assignment)
            history = CatchmentHistory(universe)
            history.add(first.assignment)
            for outcome in outcomes[1:]:
                history.add(self.testbed.campaign.measure(outcome).assignment)
            catchment_history = history.catchment_maps(origin.link_ids)
        else:
            universe = outcomes[0].covered_ases
            catchment_history = [
                {
                    link: frozenset(members & universe)
                    for link, members in outcome.catchments.items()
                }
                for outcome in outcomes
            ]

        state = ClusterState(universe)
        steps: List[StepStats] = []
        for config, catchments in zip(configs, catchment_history):
            state.refine_with_catchments(catchments)
            steps.append(
                StepStats(
                    config_label=config.label or config.describe(),
                    phase=config.phase,
                    num_clusters=state.num_clusters(),
                    mean_cluster_size=state.mean_size(),
                    p90_cluster_size=state.size_percentile(90.0),
                )
            )
        split_report = None
        if split_threshold is not None and not measured:
            from .refinement import LargeClusterSplitter

            splitter = LargeClusterSplitter(
                simulator, origin, threshold=split_threshold
            )
            split_report = splitter.split(state, max_configs=split_budget)
            for config, extra in zip(
                split_report.configs_deployed, split_report.catchment_history
            ):
                catchment_history.append(
                    {
                        link: frozenset(members & universe)
                        for link, members in extra.items()
                    }
                )
                steps.append(
                    StepStats(
                        config_label=config.label or config.describe(),
                        phase="split",
                        num_clusters=state.num_clusters(),
                        mean_cluster_size=state.mean_size(),
                        p90_cluster_size=state.size_percentile(90.0),
                    )
                )
        clusters = state.clusters()

        localization = None
        if placement is not None:
            volume_history = [
                link_volumes(placement, outcome.catchments)
                for outcome in outcomes
            ]
            if split_report is not None:
                volume_history.extend(
                    link_volumes(placement, extra)
                    for extra in split_report.catchment_history
                )
            localizer = SpoofLocalizer(clusters, catchment_history)
            localization = localizer.localize(volume_history)

        return TrackerReport(
            universe=universe,
            steps=steps,
            clusters=clusters,
            catchment_history=catchment_history,
            localization=localization,
            placement=placement,
            measured=measured,
            split_report=split_report,
        )
