"""Systematic announcement-configuration generation (paper §III-A, §IV-a).

Three techniques, deployed as three phases:

1. **Locations** — announce from all links, then from every proper subset
   in decreasing size order, removing up to ``max_removed`` links.
   Removing up to r−1 links guarantees discovery of at least r routes per
   source.  The paper uses 7 links and ``max_removed=3``:
   Σₓ C(7, 7−x) for x in 0..3 = 64 configurations.
2. **Prepending** — for each location configuration with announcement set
   A, additional configurations prepending from subsets P ⊆ A in
   increasing size order (the paper deploys |P| = 1, giving
   Σₓ (7−x)·C(7, 7−x) = 294 more).
3. **Poisoning** — for each neighbor u of each directly-connected transit
   provider p, announce from all links while poisoning u on the
   announcement through p (347 in the paper; the exact count depends on
   the topology).

The total for the paper's setup is 64 + 294 + 347 = 705 configurations;
:func:`generate_schedule` reproduces exactly that structure for any origin
network and topology.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set

from ..bgp.announcement import DEFAULT_PREPEND_COUNT, AnnouncementConfig
from ..errors import SchedulingError
from ..topology.graph import ASGraph
from ..topology.peering import OriginNetwork
from ..types import ASN, LinkId

PHASE_LOCATIONS = "locations"
PHASE_PREPENDING = "prepending"
PHASE_POISONING = "poisoning"
PHASE_COMMUNITIES = "communities"


@dataclass(frozen=True)
class ScheduleParams:
    """Knobs for :func:`generate_schedule`.

    Attributes:
        max_removed: maximum number of links withdrawn in the locations
            phase (paper: 3, discovering ≥4 routes per source).
        max_prepend_size: maximum |P| in the prepending phase (paper: 1).
        prepend_count: extra origin-ASN copies on prepended announcements
            (paper: 4).
        include_poisoning: whether to generate the poisoning phase.
        include_communities: whether to append the §VIII no-export
            community phase (off by default — it is the paper's proposed
            extension, not part of the deployed 705-config schedule).
        max_poison_targets: optional cap on poisoning targets per provider
            (None = all neighbors, like the paper).
    """

    max_removed: int = 3
    max_prepend_size: int = 1
    prepend_count: int = DEFAULT_PREPEND_COUNT
    include_poisoning: bool = True
    include_communities: bool = False
    max_poison_targets: Optional[int] = None

    def __post_init__(self) -> None:
        if self.max_removed < 0:
            raise SchedulingError("max_removed must be non-negative")
        if self.max_prepend_size < 0:
            raise SchedulingError("max_prepend_size must be non-negative")
        if self.prepend_count < 1:
            raise SchedulingError("prepend_count must be at least 1")
        if self.max_poison_targets is not None and self.max_poison_targets < 0:
            raise SchedulingError("max_poison_targets must be non-negative")


def location_configs(
    links: Sequence[LinkId], max_removed: int = 3
) -> List[AnnouncementConfig]:
    """Phase 1: announcement-location subsets in decreasing size order.

    Generates the full-anycast configuration first, then every subset of
    size |L|−1, |L|−2, … down to |L|−``max_removed`` (never below one
    link).  Within one size, subsets are ordered lexicographically for
    determinism.
    """
    ordered = sorted(set(links))
    if not ordered:
        raise SchedulingError("origin has no peering links")
    if len(ordered) != len(links):
        raise SchedulingError(f"duplicate link ids in {list(links)!r}")
    configs: List[AnnouncementConfig] = []
    deepest = min(max_removed, len(ordered) - 1)
    for removed in range(deepest + 1):
        size = len(ordered) - removed
        for subset in itertools.combinations(ordered, size):
            configs.append(
                AnnouncementConfig(
                    announced=frozenset(subset),
                    label=f"loc:{'+'.join(subset)}",
                    phase=PHASE_LOCATIONS,
                )
            )
    return configs


def prepend_configs(
    base_configs: Iterable[AnnouncementConfig],
    max_prepend_size: int = 1,
    prepend_count: int = DEFAULT_PREPEND_COUNT,
) -> List[AnnouncementConfig]:
    """Phase 2: prepending variants of each location configuration.

    For each base configuration with announcement set A, yields one
    configuration per non-empty subset P ⊆ A with |P| ≤
    ``max_prepend_size``, in increasing |P| order (paper §III-A-b).
    """
    bases = list(base_configs)
    configs: List[AnnouncementConfig] = []
    for prepend_size in range(1, max_prepend_size + 1):
        for base in bases:
            announced = sorted(base.announced)
            if prepend_size > len(announced):
                continue
            for prepend_subset in itertools.combinations(announced, prepend_size):
                configs.append(
                    AnnouncementConfig(
                        announced=base.announced,
                        prepended=frozenset(prepend_subset),
                        prepend_count=prepend_count,
                        label=f"prep:{'+'.join(prepend_subset)}@{'+'.join(announced)}",
                        phase=PHASE_PREPENDING,
                    )
                )
    return configs


def provider_neighbor_targets(
    origin: OriginNetwork,
    graph: ASGraph,
    max_per_provider: Optional[int] = None,
) -> Dict[LinkId, List[ASN]]:
    """Poisoning targets: neighbors of each directly-connected provider.

    The paper's strategy (§III-A-c, Figure 2): poisoning an AS ``u``
    adjacent to provider ``p`` severs the ``p–u`` link for the poisoned
    announcement, forcing every source previously routed through it to
    find an alternate path.  Links close to the origin carry the most
    sources, so 1-hop-away targets maximize induced changes.

    Targets exclude the origin itself and the origin's other providers
    (poisoning a provider would just kill its own announcement).
    """
    excluded: Set[ASN] = {origin.asn}
    excluded.update(link.provider for link in origin.links)
    targets: Dict[LinkId, List[ASN]] = {}
    for link in origin.links:
        neighbors = sorted(
            asn for asn in graph.neighbors(link.provider) if asn not in excluded
        )
        if max_per_provider is not None:
            neighbors = neighbors[:max_per_provider]
        targets[link.link_id] = neighbors
    return targets


def poison_configs(
    origin: OriginNetwork,
    graph: ASGraph,
    max_per_provider: Optional[int] = None,
) -> List[AnnouncementConfig]:
    """Phase 3: one configuration per (provider link, neighbor) pair.

    Each configuration announces from every link and poisons a single
    neighbor of one provider on that provider's announcement, mirroring
    the paper's 347 poisoning configurations.
    """
    all_links = frozenset(origin.link_ids)
    targets = provider_neighbor_targets(origin, graph, max_per_provider)
    configs: List[AnnouncementConfig] = []
    for link_id in sorted(targets):
        for target in targets[link_id]:
            configs.append(
                AnnouncementConfig(
                    announced=all_links,
                    poisoned={link_id: frozenset([target])},
                    label=f"poison:{target}@{link_id}",
                    phase=PHASE_POISONING,
                )
            )
    return configs


def community_configs(
    origin: OriginNetwork,
    graph: ASGraph,
    max_per_provider: Optional[int] = None,
) -> List[AnnouncementConfig]:
    """§VIII extension: sever provider links with no-export communities.

    Mirrors :func:`poison_configs` — one configuration per (provider
    link, provider neighbor) pair — but severs the link via an RFC
    1998-style action community ("do not announce to AS u") instead of
    BGP poisoning.  Communities achieve the same catchment manipulation
    without depending on the target's loop prevention and without
    tripping tier-1 route-leak filters, at the cost of requiring the
    provider to support such communities.
    """
    all_links = frozenset(origin.link_ids)
    targets = provider_neighbor_targets(origin, graph, max_per_provider)
    configs: List[AnnouncementConfig] = []
    for link_id in sorted(targets):
        for target in targets[link_id]:
            configs.append(
                AnnouncementConfig(
                    announced=all_links,
                    no_export={link_id: frozenset([target])},
                    label=f"community:{target}@{link_id}",
                    phase=PHASE_COMMUNITIES,
                )
            )
    return configs


def distant_poison_configs(
    origin: OriginNetwork,
    graph: ASGraph,
    target_ases: Iterable[ASN],
) -> List[AnnouncementConfig]:
    """Targeted poisoning of distant ASes (paper §V-B future work).

    Large clusters tend to sit far from the announcement locations; this
    generates configurations poisoning the given (typically distant)
    target ASes on *all* announcements, attempting to force route changes
    specific to those regions.
    """
    all_links = frozenset(origin.link_ids)
    excluded = {origin.asn} | {link.provider for link in origin.links}
    configs: List[AnnouncementConfig] = []
    for target in sorted(set(target_ases)):
        if target in excluded or target not in graph:
            continue
        configs.append(
            AnnouncementConfig(
                announced=all_links,
                poisoned={link: frozenset([target]) for link in all_links},
                label=f"distant-poison:{target}",
                phase=PHASE_POISONING,
            )
        )
    return configs


def generate_schedule(
    origin: OriginNetwork,
    graph: ASGraph,
    params: Optional[ScheduleParams] = None,
) -> List[AnnouncementConfig]:
    """Full three-phase schedule (paper §IV-a).

    Returns the locations phase, then the prepending phase, then (when
    enabled) the poisoning phase, in the paper's deployment order.
    """
    params = params or ScheduleParams()
    locations = location_configs(origin.link_ids, params.max_removed)
    prepends = prepend_configs(
        locations, params.max_prepend_size, params.prepend_count
    )
    schedule = locations + prepends
    if params.include_poisoning:
        schedule.extend(poison_configs(origin, graph, params.max_poison_targets))
    if params.include_communities:
        schedule.extend(community_configs(origin, graph, params.max_poison_targets))
    return schedule


def expected_location_count(num_links: int, max_removed: int) -> int:
    """Closed-form size of the locations phase (paper's Σ C(L, L−x))."""
    deepest = min(max_removed, num_links - 1)
    return sum(
        _binomial(num_links, num_links - removed) for removed in range(deepest + 1)
    )


def expected_prepend_count(num_links: int, max_removed: int) -> int:
    """Closed-form size of the |P|=1 prepending phase (Σ (L−x)·C(L, L−x))."""
    deepest = min(max_removed, num_links - 1)
    return sum(
        (num_links - removed) * _binomial(num_links, num_links - removed)
        for removed in range(deepest + 1)
    )


def _binomial(n: int, k: int) -> int:
    if k < 0 or k > n:
        return 0
    result = 1
    for i in range(min(k, n - k)):
        result = result * (n - i) // (i + 1)
    return result
