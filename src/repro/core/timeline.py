"""Wall-clock cost model for announcement campaigns (paper §IV-a, §V-C).

BGP convergence and catchment measurement make configuration changes
slow: the paper keeps each configuration active for **70 minutes** (route
convergence takes under 2.5 minutes 99% of the time, and three
post-convergence traceroute rounds at 20-minute spacing must fit), so the
705-configuration schedule takes over a month of calendar time.  The
obvious accelerator — announcing several dedicated prefixes and deploying
configurations concurrently — trades IPv4 space for time.

:class:`CampaignTimeline` makes those trade-offs computable, for
deployment planning and for the localization-speed discussion of §V-C.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import timedelta

#: The paper's dwell time per configuration.
PAPER_MINUTES_PER_CONFIG = 70.0
#: The paper's measured 99th-percentile convergence delay.
PAPER_CONVERGENCE_MINUTES = 2.5
#: RIPE Atlas probing interval granted to the paper's experiment.
PAPER_PROBE_INTERVAL_MINUTES = 20.0


@dataclass(frozen=True)
class CampaignTimeline:
    """Wall-clock model of a measurement campaign.

    Attributes:
        convergence_minutes: wait after each announcement change before
            measurements count (paper: 2.5 min covers 99% of cases).
        probe_interval_minutes: spacing between traceroute rounds.
        rounds_per_config: post-convergence measurement rounds required.
        concurrent_prefixes: dedicated prefixes announced in parallel;
            each carries its own configuration simultaneously.
    """

    convergence_minutes: float = PAPER_CONVERGENCE_MINUTES
    probe_interval_minutes: float = PAPER_PROBE_INTERVAL_MINUTES
    rounds_per_config: int = 3
    concurrent_prefixes: int = 1

    def __post_init__(self) -> None:
        if self.convergence_minutes < 0:
            raise ValueError("convergence wait cannot be negative")
        if self.probe_interval_minutes <= 0:
            raise ValueError("probe interval must be positive")
        if self.rounds_per_config < 1:
            raise ValueError("need at least one measurement round")
        if self.concurrent_prefixes < 1:
            raise ValueError("need at least one prefix")

    @property
    def minutes_per_config(self) -> float:
        """Dwell time for one configuration.

        Convergence wait plus enough probing intervals to *guarantee*
        ``rounds_per_config`` full rounds land after convergence — the
        paper's reasoning behind its 70-minute dwell (2.5 + 3 rounds that
        may each just have been missed: (3 + 0.375)·20 ≈ 67.5, rounded up
        to 70 by the operators; we keep the analytic value).
        """
        return (
            self.convergence_minutes
            + (self.rounds_per_config + 1) * self.probe_interval_minutes
        )

    def windows_per_config(self, window_minutes: float) -> int:
        """Observation windows fitting inside one configuration's dwell.

        The live runtime reads honeypot counters once per window; this is
        how many reads one configuration's dwell affords (at least one).

        Raises:
            ValueError: if ``window_minutes`` is not positive.
        """
        if window_minutes <= 0:
            raise ValueError("window length must be positive")
        return max(1, int(self.minutes_per_config // window_minutes))

    def duration(self, num_configs: int) -> timedelta:
        """Wall-clock duration to deploy ``num_configs`` configurations."""
        if num_configs < 0:
            raise ValueError("configuration count cannot be negative")
        batches = -(-num_configs // self.concurrent_prefixes)  # ceil div
        return timedelta(minutes=batches * self.minutes_per_config)

    def configs_per_day(self) -> float:
        """Throughput in configurations per day."""
        per_prefix = (24 * 60) / self.minutes_per_config
        return per_prefix * self.concurrent_prefixes

    def prefixes_needed(self, num_configs: int, deadline: timedelta) -> int:
        """Concurrent prefixes needed to finish ``num_configs`` by ``deadline``.

        Raises:
            ValueError: if the deadline cannot fit even one configuration.
        """
        if deadline.total_seconds() <= 0:
            raise ValueError("deadline must be positive")
        batches_possible = int(
            deadline.total_seconds() / 60 / self.minutes_per_config
        )
        if batches_possible < 1:
            raise ValueError(
                f"deadline {deadline} shorter than one configuration dwell "
                f"({self.minutes_per_config:.0f} minutes)"
            )
        return -(-num_configs // batches_possible)  # ceil div


def paper_campaign_duration(num_configs: int = 705) -> timedelta:
    """The paper's deployment time: 70 minutes per configuration.

    705 configurations ≈ 34 days — why §VI notes that "deploying hundreds
    of announcement configurations takes weeks".
    """
    return timedelta(minutes=num_configs * PAPER_MINUTES_PER_CONFIG)
