"""Routing-policy compliance and catchment prediction (paper §V-C, Fig. 9).

Two pieces:

* :func:`policy_compliance` checks, per configuration, which ASes route
  according to BGP's first two decision criteria — *best relationship*
  (customer > peer > provider) and *shortest path* among equally-preferred
  routes (together, the Gao-Rexford model).  The paper finds most ASes
  follow both, suggesting catchments are predictable.
* :class:`CatchmentPredictor` exploits exactly that: it predicts a
  configuration's catchments by simulating with a *clean* Gao-Rexford
  policy (no deviants, no disabled loop prevention) and reports how well
  the prediction matches reality — the paper's proposed shortcut to avoid
  measuring every configuration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..bgp.policy import PolicyModel
from ..bgp.simulator import RoutingOutcome, RoutingSimulator
from ..topology.graph import ASGraph
from ..topology.peering import OriginNetwork
from ..topology.relationships import Relationship
from ..types import ASN, Catchment, LinkId, path_without_prepending


@dataclass(frozen=True)
class ComplianceStats:
    """Per-configuration policy-compliance fractions.

    Attributes:
        ases_checked: ASes with a route and at least one alternative.
        best_relationship: fraction choosing a route in the most-preferred
            available relationship class.
        best_relationship_and_shortest: fraction additionally choosing a
            shortest (prepending-collapsed) path within that class —
            the Gao-Rexford model.
    """

    ases_checked: int
    best_relationship: float
    best_relationship_and_shortest: float


#: Gao-Rexford class ranks (lower = more preferred).
_CLASS_RANK = {
    Relationship.CUSTOMER: 0,
    Relationship.PEER: 1,
    Relationship.PROVIDER: 2,
}


def policy_compliance(
    outcome: RoutingOutcome,
    graph: ASGraph,
    policy: PolicyModel,
    origin: Optional[OriginNetwork] = None,
) -> ComplianceStats:
    """Check observed routing decisions against Gao-Rexford criteria.

    For each AS holding a route, the candidate set is reconstructed from
    its neighbors' selected routes (applying export filters), mirroring
    how the paper reconstructs alternatives from paths observed across its
    dataset.  Path lengths are compared with prepending collapsed — the
    inflation the origin injected is not the AS's own choice.

    Args:
        outcome: the routing outcome to audit.
        graph: the topology.
        policy: export rules used to reconstruct candidate sets.
        origin: when given, the origin's direct announcements are included
            as candidates at its providers.
    """
    checked = 0
    relationship_ok = 0
    both_ok = 0
    origin_asn = outcome.origin_asn
    link_of_provider: Dict[ASN, LinkId] = {}
    if origin is not None:
        link_of_provider = {
            origin.provider_of(link): link
            for link in outcome.config.announced
        }
    for asn, route in outcome.routes.items():
        candidates: Dict[ASN, Tuple[int, int]] = {}
        for neighbor, neighbor_relationship in graph.neighbors(asn).items():
            if neighbor == origin_asn:
                link = link_of_provider.get(asn)
                if link is not None:
                    announced = outcome.config.as_path_for_link(origin_asn, link)
                    candidates[neighbor] = (
                        _CLASS_RANK[neighbor_relationship],
                        len(path_without_prepending(announced)),
                    )
                continue
            neighbor_route = outcome.routes.get(neighbor)
            if neighbor_route is None or neighbor_route.learned_from == asn:
                continue
            if not policy.exports(
                neighbor_route.relationship, graph.relationship(neighbor, asn)
            ):
                continue
            collapsed = path_without_prepending(neighbor_route.as_path)
            candidates[neighbor] = (
                _CLASS_RANK[neighbor_relationship],
                len(collapsed) + 1,
            )
        if len(candidates) < 2:
            continue  # no real choice to audit
        checked += 1
        chosen = candidates.get(route.learned_from)
        if chosen is None:
            continue
        best_class = min(rank for rank, _ in candidates.values())
        if chosen[0] != best_class:
            continue
        relationship_ok += 1
        shortest_in_class = min(
            length for rank, length in candidates.values() if rank == best_class
        )
        if chosen[1] <= shortest_in_class:
            both_ok += 1
    return ComplianceStats(
        ases_checked=checked,
        best_relationship=relationship_ok / checked if checked else 1.0,
        best_relationship_and_shortest=both_ok / checked if checked else 1.0,
    )


@dataclass(frozen=True)
class PredictionAccuracy:
    """Agreement between predicted and actual catchments.

    Attributes:
        ases_compared: ASes present in both outcomes.
        fraction_correct: fraction assigned to the same link.
    """

    ases_compared: int
    fraction_correct: float


class CatchmentPredictor:
    """Predicts catchments with an idealized Gao-Rexford simulation.

    The predictor shares the topology but none of the deviant-policy
    state, standing in for an operator's model of the Internet built from
    public relationship data.
    """

    def __init__(self, graph: ASGraph, origin: OriginNetwork) -> None:
        ideal_policy = PolicyModel(
            graph,
            seed=0,
            policy_noise=0.0,
            loop_prevention_disabled_fraction=0.0,
        )
        self._simulator = RoutingSimulator(graph, origin, ideal_policy)

    def predict(self, config) -> RoutingOutcome:
        """Predicted routing outcome for ``config``."""
        return self._simulator.simulate(config)

    @staticmethod
    def accuracy(
        predicted: RoutingOutcome, actual: RoutingOutcome
    ) -> PredictionAccuracy:
        """Fraction of ASes whose predicted catchment matches reality."""
        compared = 0
        correct = 0
        for asn, route in actual.routes.items():
            predicted_route = predicted.routes.get(asn)
            if predicted_route is None:
                continue
            compared += 1
            if predicted_route.link_id == route.link_id:
                correct += 1
        return PredictionAccuracy(
            ases_compared=compared,
            fraction_correct=correct / compared if compared else 1.0,
        )
