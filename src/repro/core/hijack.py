"""Prefix-hijack scenario coverage (paper §VI).

A configuration announcing a prefix from n locations doubles as 2ⁿ hijack
experiments: partition the announcing links into "legitimate" and
"hijacker" sets, and the measured catchments immediately tell you which
fraction of the Internet the hijacker would capture.  The paper highlights
this reuse for studying same-prefix-length hijack propagation (the
interesting case — subprefix hijacks trivially win by longest-prefix
match).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import FrozenSet, Iterator, List, Mapping

from ..bgp.announcement import AnnouncementConfig
from ..bgp.simulator import RoutingOutcome
from ..types import Catchment, LinkId


@dataclass(frozen=True)
class HijackScenario:
    """One way of reading a configuration as a hijack experiment.

    Attributes:
        legitimate_links: links treated as the true origin's announcements.
        hijacker_links: links treated as the hijacker's announcements.
    """

    legitimate_links: FrozenSet[LinkId]
    hijacker_links: FrozenSet[LinkId]

    @property
    def is_degenerate(self) -> bool:
        """True when one side announces nothing (no contest)."""
        return not self.legitimate_links or not self.hijacker_links


def hijack_scenarios(config: AnnouncementConfig) -> Iterator[HijackScenario]:
    """All 2ⁿ (legitimate, hijacker) partitions of a configuration's links."""
    links = sorted(config.announced)
    for size in range(len(links) + 1):
        for hijacker_subset in itertools.combinations(links, size):
            hijackers = frozenset(hijacker_subset)
            yield HijackScenario(
                legitimate_links=config.announced - hijackers,
                hijacker_links=hijackers,
            )


@dataclass(frozen=True)
class HijackImpact:
    """Impact of one hijack scenario under measured catchments.

    Attributes:
        scenario: the partition evaluated.
        ases_captured: ASes whose traffic the hijacker attracts.
        ases_total: ASes covered by the configuration.
    """

    scenario: HijackScenario
    ases_captured: int
    ases_total: int

    @property
    def capture_fraction(self) -> float:
        """Fraction of covered ASes the hijacker captures."""
        return self.ases_captured / self.ases_total if self.ases_total else 0.0


def hijack_impact(
    catchments: Mapping[LinkId, Catchment], scenario: HijackScenario
) -> HijackImpact:
    """Evaluate a scenario against one configuration's catchments."""
    captured = sum(
        len(catchments.get(link, frozenset()))
        for link in scenario.hijacker_links
    )
    total = sum(len(members) for members in catchments.values())
    return HijackImpact(
        scenario=scenario, ases_captured=captured, ases_total=total
    )


def hijack_coverage_report(
    outcome: RoutingOutcome, include_degenerate: bool = False
) -> List[HijackImpact]:
    """Impacts of every scenario of the outcome's configuration.

    Sorted by descending capture fraction; degenerate (empty-side)
    scenarios are skipped by default.
    """
    impacts = [
        hijack_impact(outcome.catchments, scenario)
        for scenario in hijack_scenarios(outcome.config)
        if include_degenerate or not scenario.is_degenerate
    ]
    impacts.sort(
        key=lambda impact: (
            -impact.capture_fraction,
            sorted(impact.scenario.hijacker_links),
        )
    )
    return impacts
