"""The paper's contribution: configuration generation, clustering,
localization, scheduling, prediction, and the end-to-end pipeline."""

from .clustering import ClusterState, clusters_from_catchment_history
from .configgen import (
    PHASE_COMMUNITIES,
    PHASE_LOCATIONS,
    PHASE_POISONING,
    PHASE_PREPENDING,
    ScheduleParams,
    community_configs,
    distant_poison_configs,
    expected_location_count,
    expected_prepend_count,
    generate_schedule,
    location_configs,
    poison_configs,
    prepend_configs,
    provider_neighbor_targets,
)
from .hijack import (
    HijackImpact,
    HijackScenario,
    hijack_coverage_report,
    hijack_impact,
    hijack_scenarios,
)
from .localization import (
    LocalizationQuality,
    LocalizationResult,
    RankedCluster,
    SpoofLocalizer,
    estimate_cluster_volumes,
    traffic_fraction_by_cluster_size,
)
from .pipeline import SpoofTracker, StepStats, Testbed, TrackerReport, build_testbed
from .refinement import LargeClusterSplitter, SplitReport
from .staleness import StalenessExperiment, StalenessPoint, churned_policy
from .timeline import (
    PAPER_MINUTES_PER_CONFIG,
    CampaignTimeline,
    paper_campaign_duration,
)
from .prediction import (
    CatchmentPredictor,
    ComplianceStats,
    PredictionAccuracy,
    policy_compliance,
)
from .scheduler import (
    GreedyScheduler,
    VolumeAwareGreedyScheduler,
    mean_cluster_size_curve,
    percentile_curve,
    random_schedule_curves,
)

__all__ = [
    "ClusterState",
    "clusters_from_catchment_history",
    "ScheduleParams",
    "generate_schedule",
    "location_configs",
    "prepend_configs",
    "poison_configs",
    "community_configs",
    "distant_poison_configs",
    "provider_neighbor_targets",
    "expected_location_count",
    "expected_prepend_count",
    "PHASE_LOCATIONS",
    "PHASE_PREPENDING",
    "PHASE_POISONING",
    "PHASE_COMMUNITIES",
    "LargeClusterSplitter",
    "SplitReport",
    "StalenessExperiment",
    "StalenessPoint",
    "churned_policy",
    "CampaignTimeline",
    "paper_campaign_duration",
    "PAPER_MINUTES_PER_CONFIG",
    "SpoofLocalizer",
    "LocalizationResult",
    "LocalizationQuality",
    "RankedCluster",
    "estimate_cluster_volumes",
    "traffic_fraction_by_cluster_size",
    "GreedyScheduler",
    "VolumeAwareGreedyScheduler",
    "mean_cluster_size_curve",
    "random_schedule_curves",
    "percentile_curve",
    "CatchmentPredictor",
    "ComplianceStats",
    "PredictionAccuracy",
    "policy_compliance",
    "HijackScenario",
    "HijackImpact",
    "hijack_scenarios",
    "hijack_impact",
    "hijack_coverage_report",
    "Testbed",
    "build_testbed",
    "SpoofTracker",
    "TrackerReport",
    "StepStats",
]
