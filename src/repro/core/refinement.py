"""Targeted splitting of large clusters (paper §V-B future work).

The paper observes that large clusters sit far from the announcement
locations, where the base schedule's route perturbations wash out, and
proposes "targeted poisoning of distant ASes to induce route changes
specific to split these large distant clusters".

:class:`LargeClusterSplitter` implements that loop:

1. find clusters larger than a threshold,
2. for each, pick poisoning targets *specific to the cluster* — the
   upstream next-hop ASes its members currently route through (severing a
   member's exit forces that member, and usually only part of the
   cluster, onto a different catchment),
3. deploy the generated distant-poison configurations, refine, repeat
   until the clusters are small or the budget runs out.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, FrozenSet, List, Optional, Set

from ..bgp.announcement import AnnouncementConfig
from ..bgp.simulator import RoutingOutcome, RoutingSimulator
from ..errors import SimulationError
from ..topology.peering import OriginNetwork
from ..types import ASN, Catchment, LinkId
from .clustering import ClusterState
from .configgen import distant_poison_configs

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from .engine import SimulationEngine


@dataclass(frozen=True)
class SplitSnapshot:
    """Cluster statistics right after one split configuration deployed.

    Captured inside the splitting loop, so consumers (the pipeline's
    per-step ``StepStats``) see the actual per-configuration progression
    rather than the final refined state repeated.
    """

    num_clusters: int
    mean_cluster_size: float
    p90_cluster_size: float


@dataclass
class SplitReport:
    """Outcome of one large-cluster splitting campaign.

    Attributes:
        configs_deployed: extra configurations actually simulated.
        rounds: refinement rounds executed.
        initial_sizes: large-cluster sizes before splitting.
        final_sizes: sizes of the descendants of those clusters after.
        catchment_history: catchments of the extra configurations (for
            feeding localization).
        snapshots: cluster statistics after each deployed configuration
            (parallel to ``configs_deployed``).
    """

    configs_deployed: List[AnnouncementConfig] = field(default_factory=list)
    rounds: int = 0
    initial_sizes: List[int] = field(default_factory=list)
    final_sizes: List[int] = field(default_factory=list)
    catchment_history: List[Dict[LinkId, Catchment]] = field(default_factory=list)
    snapshots: List[SplitSnapshot] = field(default_factory=list)

    @property
    def initial_max(self) -> int:
        """Largest targeted cluster before splitting."""
        return max(self.initial_sizes, default=0)

    @property
    def final_max(self) -> int:
        """Largest descendant cluster after splitting."""
        return max(self.final_sizes, default=0)


class LargeClusterSplitter:
    """Splits large clusters with cluster-specific poison targets.

    Args:
        simulator: routing simulator for the topology.
        origin: the announcing network.
        threshold: clusters strictly larger than this are targeted.
        max_targets_per_cluster: poison-target budget per cluster per round.
        use_absence_signal: also refine on the set of sources that *lose
            reachability* under a poisoned configuration.  A source with
            no route sends no traffic, so silence on all links is itself
            an observable catchment — this separates single-homed cones
            (e.g. a provider's exclusive customers) that plain catchment
            membership can never split.
        engine: optional :class:`~repro.core.engine.SimulationEngine` to
            simulate through.  Sharing the pipeline's engine means the
            splitter's baseline (the anycast-all configuration the
            schedule already deployed) is a cache hit, and split
            configurations seen in earlier rounds are never re-simulated.
    """

    def __init__(
        self,
        simulator: RoutingSimulator,
        origin: OriginNetwork,
        threshold: int = 5,
        max_targets_per_cluster: int = 3,
        use_absence_signal: bool = True,
        engine: Optional["SimulationEngine"] = None,
    ) -> None:
        if threshold < 1:
            raise ValueError("threshold must be at least 1")
        if max_targets_per_cluster < 1:
            raise ValueError("need at least one target per cluster")
        self.simulator = simulator
        self.origin = origin
        self.threshold = threshold
        self.max_targets_per_cluster = max_targets_per_cluster
        self.use_absence_signal = use_absence_signal
        self.engine = engine

    def _simulate(self, config: AnnouncementConfig) -> RoutingOutcome:
        if self.engine is not None:
            return self.engine.simulate(config)
        return self.simulator.simulate(config)

    # ------------------------------------------------------------------

    def poison_targets_for_cluster(
        self, cluster: FrozenSet[ASN], outcome: RoutingOutcome
    ) -> List[ASN]:
        """Upstream next-hops of the cluster's members, most shared first.

        Severing a next-hop shared by *some but not all* members is what
        splits a cluster, so targets are ranked by how many members use
        them, excluding the origin's own providers (poisoning those just
        reproduces the base withdrawal configurations).
        """
        excluded: Set[ASN] = {self.origin.asn}
        excluded.update(link.provider for link in self.origin.links)
        usage: Dict[ASN, int] = {}
        for member in cluster:
            route = outcome.route(member)
            if route is None:
                continue
            # Walk the first two upstream hops: severing either can split
            # the cluster — members pick different alternates, or (with
            # the absence signal) a poisoned member's single-homed cone
            # goes dark while the rest of the cluster stays reachable.
            for next_hop in outcome.forwarding_path(member)[1:3]:
                if next_hop in excluded:
                    continue
                usage[next_hop] = usage.get(next_hop, 0) + 1
        # Prefer targets used by *part* of the cluster (a sever splits it
        # directly); fully-shared targets still help because members then
        # choose different alternate routes.
        ranked = sorted(
            usage.items(),
            key=lambda item: (item[1] >= len(cluster), -item[1], item[0]),
        )
        return [target for target, _ in ranked[: self.max_targets_per_cluster]]

    def split(
        self,
        state: ClusterState,
        max_rounds: int = 3,
        max_configs: int = 30,
    ) -> SplitReport:
        """Run the splitting loop, refining ``state`` in place."""
        report = SplitReport()
        baseline = self._simulate(
            AnnouncementConfig(
                announced=frozenset(self.origin.link_ids),
                label="splitter-baseline",
            )
        )
        targeted_members: Set[ASN] = set()
        for cluster in state.clusters():
            if len(cluster) > self.threshold:
                report.initial_sizes.append(len(cluster))
                targeted_members |= cluster
        if not targeted_members:
            return report

        for _ in range(max_rounds):
            large = [c for c in state.clusters() if len(c) > self.threshold]
            if not large or len(report.configs_deployed) >= max_configs:
                break
            report.rounds += 1
            targets: List[ASN] = []
            for cluster in large:
                targets.extend(self.poison_targets_for_cluster(cluster, baseline))
            configs = distant_poison_configs(
                self.origin, self.simulator.graph, targets
            )
            budget = max_configs - len(report.configs_deployed)
            round_configs = configs[:budget]
            if self.engine is not None:
                outcomes = self.engine.simulate_many(round_configs)
            else:
                outcomes = [self.simulator.simulate(c) for c in round_configs]
            for config, outcome in zip(round_configs, outcomes):
                catchments = {
                    link: frozenset(members)
                    for link, members in outcome.catchments.items()
                }
                state.refine_with_catchments(catchments)
                if self.use_absence_signal:
                    unrouted = state.universe - outcome.covered_ases
                    state.refine(unrouted)
                report.configs_deployed.append(config)
                report.catchment_history.append(catchments)
                report.snapshots.append(
                    SplitSnapshot(
                        num_clusters=state.num_clusters(),
                        mean_cluster_size=state.mean_size(),
                        p90_cluster_size=state.size_percentile(90.0),
                    )
                )

        for cluster in state.clusters():
            if cluster & targeted_members:
                report.final_sizes.append(len(cluster))
        return report
