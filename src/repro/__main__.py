"""``python -m repro`` dispatches to the spooftrack CLI."""

import sys

from .cli import main

if __name__ == "__main__":
    sys.exit(main())
