"""Announcement configurations ⟨A; P; Q⟩ (paper §III).

A configuration describes how the origin announces one IP prefix:

* ``A`` — the set of peering links announcing the prefix,
* ``P ⊆ A`` — the links announcing with AS-path prepending,
* ``Q`` — a mapping from links in ``A`` to the set of ASes poisoned on
  that link's announcement.

The paper prepends the origin ASN four extra times ("longer than most
AS-paths in the Internet") and surrounds each poisoned ASN with the
origin's own ASN, as PEERING requires; both behaviours are reproduced in
:meth:`AnnouncementConfig.as_path_for_link`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Mapping, Optional, Tuple

from ..errors import AnnouncementError
from ..types import ASN, ASPath, LinkId

#: Number of extra times the origin prepends its own ASN (paper §III-A-b).
DEFAULT_PREPEND_COUNT = 4


def _freeze_poisons(
    poisoned: Optional[Mapping[LinkId, Iterable[ASN]]]
) -> Dict[LinkId, FrozenSet[ASN]]:
    if not poisoned:
        return {}
    return {
        link: frozenset(ases)
        for link, ases in poisoned.items()
        if ases
    }


@dataclass(frozen=True)
class AnnouncementConfig:
    """One announcement configuration ⟨A; P; Q⟩.

    Attributes:
        announced: links announcing the prefix (``A``).  Must be non-empty.
        prepended: links announcing with prepending (``P ⊆ A``).
        poisoned: per-link poisoned AS sets (``Q``; keys ⊆ ``A``).
        no_export: per-link sets of the provider's neighbors the provider
            is asked not to export the route to, via action communities
            (RFC 1998-style "do not announce to AS x").  This is the
            paper's §VIII extension: like poisoning it severs specific
            provider links, but it does not rely on the target's loop
            prevention and is not caught by tier-1 route-leak filters.
        prepend_count: extra copies of the origin ASN on prepended links.
        label: optional human-readable name (e.g. ``"locations:6/7"``).
        phase: generation phase tag (``"locations"``, ``"prepending"``,
            ``"poisoning"``, ``"communities"``) used by the evaluation to
            split results.
    """

    announced: FrozenSet[LinkId]
    prepended: FrozenSet[LinkId] = frozenset()
    poisoned: Mapping[LinkId, FrozenSet[ASN]] = field(default_factory=dict)
    no_export: Mapping[LinkId, FrozenSet[ASN]] = field(default_factory=dict)
    prepend_count: int = DEFAULT_PREPEND_COUNT
    label: str = ""
    phase: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "announced", frozenset(self.announced))
        object.__setattr__(self, "prepended", frozenset(self.prepended))
        object.__setattr__(self, "poisoned", _freeze_poisons(self.poisoned))
        object.__setattr__(self, "no_export", _freeze_poisons(self.no_export))
        if not self.announced:
            raise AnnouncementError("configuration must announce from at least one link")
        if not self.prepended <= self.announced:
            extra = sorted(self.prepended - self.announced)
            raise AnnouncementError(f"prepending from unannounced links: {extra}")
        if not set(self.poisoned) <= self.announced:
            extra = sorted(set(self.poisoned) - self.announced)
            raise AnnouncementError(f"poisoning via unannounced links: {extra}")
        if not set(self.no_export) <= self.announced:
            extra = sorted(set(self.no_export) - self.announced)
            raise AnnouncementError(f"no-export communities on unannounced links: {extra}")
        if self.prepend_count < 1:
            raise AnnouncementError("prepend_count must be at least 1")

    # ------------------------------------------------------------------

    def poisons_for_link(self, link: LinkId) -> FrozenSet[ASN]:
        """ASes poisoned on the announcement through ``link``."""
        return self.poisoned.get(link, frozenset())

    def no_export_for_link(self, link: LinkId) -> FrozenSet[ASN]:
        """Provider neighbors blocked by community on ``link``'s announcement."""
        return self.no_export.get(link, frozenset())

    @property
    def uses_communities(self) -> bool:
        """True if any link carries a no-export action community."""
        return bool(self.no_export)

    def as_path_for_link(self, origin_asn: ASN, link: LinkId) -> ASPath:
        """AS-path the origin announces through ``link``.

        The path starts with the origin ASN (repeated when prepending) and
        surrounds each poisoned ASN with the origin's ASN, matching
        PEERING's required poisoning format (``o u o``).

        Raises:
            AnnouncementError: if ``link`` is not in the announcement set.
        """
        if link not in self.announced:
            raise AnnouncementError(f"link {link!r} not announced in this configuration")
        copies = 1 + (self.prepend_count if link in self.prepended else 0)
        path = [origin_asn] * copies
        for poisoned_asn in sorted(self.poisons_for_link(link)):
            if poisoned_asn == origin_asn:
                continue  # poisoning yourself is a no-op, not extra stuffing
            path.extend((poisoned_asn, origin_asn))
        return tuple(path)

    @property
    def uses_prepending(self) -> bool:
        """True if any link announces with prepending."""
        return bool(self.prepended)

    @property
    def uses_poisoning(self) -> bool:
        """True if any link poisons at least one AS."""
        return bool(self.poisoned)

    def key(self) -> Tuple:
        """Canonical hashable identity (ignores label/phase metadata)."""
        return (
            tuple(sorted(self.announced)),
            tuple(sorted(self.prepended)),
            tuple(sorted((link, tuple(sorted(ases))) for link, ases in self.poisoned.items())),
            tuple(sorted((link, tuple(sorted(ases))) for link, ases in self.no_export.items())),
            self.prepend_count,
        )

    def describe(self) -> str:
        """One-line human-readable description."""
        parts = [f"A={{{','.join(sorted(self.announced))}}}"]
        if self.prepended:
            parts.append(f"P={{{','.join(sorted(self.prepended))}}}x{self.prepend_count}")
        if self.poisoned:
            poisons = ";".join(
                f"{link}:{','.join(str(a) for a in sorted(ases))}"
                for link, ases in sorted(self.poisoned.items())
            )
            parts.append(f"Q={{{poisons}}}")
        if self.no_export:
            blocked = ";".join(
                f"{link}:{','.join(str(a) for a in sorted(ases))}"
                for link, ases in sorted(self.no_export.items())
            )
            parts.append(f"C={{{blocked}}}")
        text = " ".join(parts)
        return f"{self.label or 'config'} {text}"


def anycast_all(links: Iterable[LinkId], label: str = "anycast-all") -> AnnouncementConfig:
    """Convenience: announce from every link, no prepending, no poisoning.

    This is the paper's baseline configuration — the first deployed, and
    the one defining which sources are eligible for analysis (§IV-d).
    """
    return AnnouncementConfig(
        announced=frozenset(links), label=label, phase="locations"
    )
