"""Event-driven, message-level BGP convergence simulation.

The fixpoint simulator (:mod:`repro.bgp.simulator`) answers *where routes
end up*; this engine answers *how long they take to get there*.  The
paper's deployment methodology hinges on convergence dynamics: each
configuration stays active for 70 minutes because route convergence takes
under 2.5 minutes 99% of the time and three post-convergence traceroute
rounds must fit (§IV-a).

The engine models:

* per-session UPDATE/WITHDRAW messages carrying full AS-paths,
* per-link propagation delays (deterministic, seeded),
* per-router processing delays,
* the MRAI timer (minimum route advertisement interval) that batches
  successive updates to the same neighbor — the main source of BGP's
  multi-second convergence tail,
* import/export policies identical to the fixpoint simulator's, so the
  converged state provably matches :class:`RoutingSimulator`'s outcome
  (asserted in the test suite).
"""

from __future__ import annotations

import heapq
import zlib
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Set, Tuple

from ..errors import ConvergenceError
from ..topology.graph import ASGraph
from ..topology.peering import OriginNetwork
from ..topology.relationships import Relationship
from ..types import ASN, ASPath, LinkId
from .announcement import AnnouncementConfig
from .policy import PolicyModel
from .route import Route, stable_tiebreak
from .simulator import RoutingOutcome

#: Default MRAI for eBGP sessions (RFC 4271 suggests 30 seconds).
DEFAULT_MRAI_SECONDS = 30.0
#: Default per-message processing delay at a router.
DEFAULT_PROCESSING_SECONDS = 0.05


@dataclass(frozen=True)
class ConvergenceParams:
    """Timing knobs for the convergence engine.

    Attributes:
        mrai_seconds: minimum spacing between successive advertisements to
            the same neighbor (0 disables the timer).
        min_link_delay_seconds / max_link_delay_seconds: range of the
            deterministic per-link propagation delays.
        processing_seconds: per-message processing time.
        seed: drives the per-link delay assignment.
    """

    mrai_seconds: float = DEFAULT_MRAI_SECONDS
    min_link_delay_seconds: float = 0.01
    max_link_delay_seconds: float = 0.25
    processing_seconds: float = DEFAULT_PROCESSING_SECONDS
    seed: int = 0

    def __post_init__(self) -> None:
        if self.mrai_seconds < 0:
            raise ConvergenceError("MRAI cannot be negative")
        if not 0 <= self.min_link_delay_seconds <= self.max_link_delay_seconds:
            raise ConvergenceError("link delay range is inverted or negative")
        if self.processing_seconds < 0:
            raise ConvergenceError("processing delay cannot be negative")


@dataclass
class ConvergenceResult:
    """Outcome of one event-driven convergence run.

    Attributes:
        routes: converged best route per AS.
        convergence_time: time of the last best-route change (seconds).
        messages_sent: total UPDATE/WITHDRAW messages exchanged.
        last_change_by_as: per AS, when its best route last changed.
        events_processed: total events popped from the queue.
    """

    config: AnnouncementConfig
    routes: Dict[ASN, Route]
    convergence_time: float
    messages_sent: int
    last_change_by_as: Dict[ASN, float]
    events_processed: int
    origin_asn: ASN

    def catchments(self) -> Dict[LinkId, frozenset]:
        """Per-link catchments of the converged state."""
        catchments: Dict[LinkId, set] = {
            link: set() for link in self.config.announced
        }
        for asn, route in self.routes.items():
            catchments[route.link_id].add(asn)
        return {link: frozenset(members) for link, members in catchments.items()}

    def agrees_with(self, outcome: RoutingOutcome) -> bool:
        """True if the converged catchment assignment matches a fixpoint outcome."""
        if set(self.routes) != set(outcome.routes):
            return False
        return all(
            self.routes[asn].link_id == outcome.routes[asn].link_id
            and self.routes[asn].learned_from == outcome.routes[asn].learned_from
            for asn in self.routes
        )


class _AdjRibIn:
    """Per-AS table of the routes each neighbor last advertised."""

    __slots__ = ("entries",)

    def __init__(self) -> None:
        # neighbor → (as_path as received, link_id, sender_relationship)
        self.entries: Dict[ASN, Tuple[ASPath, LinkId]] = {}


class ConvergenceEngine:
    """Simulates BGP message exchange for one announcement configuration.

    Args:
        graph: AS topology (origin attached).
        origin: the announcing network.
        policy: import/export policies; must be shared with any
            :class:`RoutingSimulator` whose outcome is compared against.
        params: timing parameters.
        max_events: safety bound on processed events.
    """

    def __init__(
        self,
        graph: ASGraph,
        origin: OriginNetwork,
        policy: Optional[PolicyModel] = None,
        params: Optional[ConvergenceParams] = None,
        max_events: int = 2_000_000,
    ) -> None:
        self.graph = graph
        self.origin = origin
        self.policy = policy if policy is not None else PolicyModel(graph)
        self.params = params or ConvergenceParams()
        self.max_events = max_events
        self._neighbors: Dict[ASN, List[Tuple[ASN, Relationship]]] = {
            asn: sorted(graph.neighbors(asn).items()) for asn in graph.ases
        }

    # ------------------------------------------------------------------

    def link_delay(self, a: ASN, b: ASN) -> float:
        """Deterministic propagation delay of the a→b session."""
        low, high = (
            self.params.min_link_delay_seconds,
            self.params.max_link_delay_seconds,
        )
        if high <= low:
            return low
        key = (a, b) if a < b else (b, a)
        digest = zlib.crc32(f"delay|{key[0]}|{key[1]}|{self.params.seed}".encode())
        return low + (digest % 10_000) / 10_000.0 * (high - low)

    # ------------------------------------------------------------------

    def run(self, config: AnnouncementConfig) -> ConvergenceResult:
        """Propagate ``config`` from scratch until the event queue drains."""
        origin_asn = self.origin.asn
        announced_paths: Dict[LinkId, ASPath] = {
            link: config.as_path_for_link(origin_asn, link)
            for link in sorted(config.announced)
        }
        provider_by_link: Dict[LinkId, ASN] = {
            link: self.origin.provider_of(link)
            for link in sorted(config.announced)
        }

        rib_in: Dict[ASN, _AdjRibIn] = {asn: _AdjRibIn() for asn in self.graph.ases}
        best: Dict[ASN, Route] = {}
        # Per (sender, receiver): earliest next send time (MRAI) and
        # whether a send is already scheduled (coalescing).
        mrai_ready: Dict[Tuple[ASN, ASN], float] = {}
        send_scheduled: Set[Tuple[ASN, ASN]] = set()

        # Event queue: (time, sequence, kind, payload)
        #  kind "deliver": payload = (sender, receiver)  — receiver reads
        #  the sender's *current* export (coalescing semantics).
        queue: List[Tuple[float, int, str, Tuple[ASN, ASN]]] = []
        sequence = 0
        messages_sent = 0
        last_change: Dict[ASN, float] = {}
        convergence_time = 0.0

        def schedule_send(sender: ASN, receiver: ASN, now: float) -> None:
            nonlocal sequence
            key = (sender, receiver)
            if key in send_scheduled:
                return  # a pending delivery will pick up the latest state
            ready = mrai_ready.get(key, 0.0)
            fire = max(now, ready) + self.link_delay(sender, receiver)
            send_scheduled.add(key)
            sequence += 1
            heapq.heappush(queue, (fire, sequence, "deliver", key))

        def export_of(sender: ASN, receiver: ASN) -> Optional[Route]:
            """What ``sender`` currently advertises to ``receiver``."""
            if sender == origin_asn:
                link = _link_of_provider(provider_by_link, receiver)
                if link is None:
                    return None
                path = announced_paths[link]
                return Route(
                    as_path=path,
                    link_id=link,
                    learned_from=origin_asn,
                    relationship=Relationship.PROVIDER,  # placeholder; unused
                    local_pref=0,
                )
            route = best.get(sender)
            if route is None:
                return None
            if not self.policy.exports(
                route.relationship, self.graph.relationship(sender, receiver)
            ):
                return None
            blocked = config.no_export_for_link(route.link_id)
            if (
                blocked
                and receiver in blocked
                and sender == provider_by_link[route.link_id]
            ):
                return None
            return route

        def reselect(asn: ASN, now: float) -> None:
            """Re-run best-path selection at ``asn``; propagate changes."""
            nonlocal convergence_time
            candidates: List[Route] = []
            salt = self.policy.salt_for(asn)
            best_key = None
            best_route: Optional[Route] = None
            for neighbor, (path, link) in rib_in[asn].entries.items():
                relationship = self.graph.relationship(asn, neighbor)
                announced = announced_paths[link]
                stuffed_len = len(announced)
                transit = path[:-stuffed_len] if stuffed_len < len(path) else ()
                if not self.policy.accepts(asn, transit, announced, relationship):
                    continue
                local_pref = self.policy.local_pref(asn, relationship)
                key = (
                    -local_pref,
                    len(path),
                    self.policy.igp_cost(asn, neighbor),
                    stable_tiebreak(asn, neighbor, salt),
                    neighbor,
                    link,
                )
                if best_key is None or key < best_key:
                    best_key = key
                    best_route = Route(
                        as_path=path,
                        link_id=link,
                        learned_from=neighbor,
                        relationship=relationship,
                        local_pref=local_pref,
                    )
            old = best.get(asn)
            if best_route == old:
                return
            if best_route is None:
                del best[asn]
            else:
                best[asn] = best_route
            last_change[asn] = now
            convergence_time = max(convergence_time, now)
            for neighbor, _ in self._neighbors[asn]:
                if neighbor == origin_asn:
                    continue
                schedule_send(asn, neighbor, now)

        # Kick-off: the origin advertises to each announced link's provider.
        for link in sorted(config.announced):
            schedule_send(origin_asn, provider_by_link[link], 0.0)

        events = 0
        while queue:
            events += 1
            if events > self.max_events:
                raise ConvergenceError(
                    f"exceeded {self.max_events} events for {config.describe()}"
                )
            now, _, _, (sender, receiver) = heapq.heappop(queue)
            send_scheduled.discard((sender, receiver))
            mrai_ready[(sender, receiver)] = now + self.params.mrai_seconds
            messages_sent += 1
            advertised = export_of(sender, receiver)
            entries = rib_in[receiver].entries
            if advertised is None:
                if sender not in entries:
                    continue  # withdraw of something never installed
                del entries[sender]
            else:
                exported_path = (
                    advertised.as_path
                    if sender == origin_asn
                    else (sender,) + advertised.as_path
                )
                if entries.get(sender) == (exported_path, advertised.link_id):
                    continue  # duplicate advertisement
                entries[sender] = (exported_path, advertised.link_id)
            reselect(receiver, now + self.params.processing_seconds)

        return ConvergenceResult(
            config=config,
            routes=dict(best),
            convergence_time=convergence_time,
            messages_sent=messages_sent,
            last_change_by_as=last_change,
            events_processed=events,
            origin_asn=origin_asn,
        )


def _link_of_provider(
    provider_by_link: Mapping[LinkId, ASN], provider: ASN
) -> Optional[LinkId]:
    for link, asn in provider_by_link.items():
        if asn == provider:
            return link
    return None
