"""BGP route objects and the best-path decision key.

A :class:`Route` as held by some AS records the AS-path exactly as
received (neighbor first, origin last, including prepending and poisoning
stuffing), which peering link of the origin the route descends from, and
the relationship class it was learned under.

Best-path selection (paper §II) compares, in order:

1. LocalPref (higher wins) — assigned by the holder's import policy,
2. AS-path length (shorter wins),
3. deterministic per-AS tiebreaks standing in for IGP cost / MED / age.

The tiebreak must be *stable but arbitrary per (holder, neighbor) pair*:
real routers break ties on internal state the origin cannot see, and the
paper's prepending technique works precisely because prepending overrides
those ties.  We use a salted CRC32 so runs are reproducible across
processes (Python's ``hash`` is process-salted).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Optional, Tuple

from ..topology.relationships import Relationship
from ..types import ASN, ASPath, LinkId


def stable_tiebreak(holder: ASN, neighbor: ASN, salt: int) -> int:
    """Deterministic pseudo-random tiebreak value for a (holder, neighbor) pair."""
    payload = f"{holder}|{neighbor}|{salt}".encode("ascii")
    return zlib.crc32(payload)


@dataclass(frozen=True)
class Route:
    """A route to the origin's prefix as held by one AS.

    Attributes:
        as_path: AS-path as received, neighbor-first and origin-last;
            includes prepending repetitions and poisoning stuffing.
        link_id: origin peering link this route was announced through.
        learned_from: neighbor the route was learned from.
        relationship: relationship of ``learned_from`` as seen by the
            holder (drives LocalPref).
        local_pref: LocalPref assigned at import time by the holder.
    """

    as_path: ASPath
    link_id: LinkId
    learned_from: ASN
    relationship: Relationship
    local_pref: int

    @property
    def path_length(self) -> int:
        """AS-path length, the BGP metric (counts prepending repetitions)."""
        return len(self.as_path)

    def decision_key(self, holder: ASN, salt: int) -> Tuple[int, int, int, int, LinkId]:
        """Sort key implementing the BGP decision process (lower is better)."""
        return (
            -self.local_pref,
            self.path_length,
            stable_tiebreak(holder, self.learned_from, salt),
            self.learned_from,
            self.link_id,
        )

    def extended_by(self, asn: ASN) -> ASPath:
        """AS-path this route would carry when exported by ``asn``."""
        return (asn,) + self.as_path

    def contains_loop_for(self, asn: ASN) -> bool:
        """True if ``asn`` appears in the AS-path (BGP loop prevention fires)."""
        return asn in self.as_path


def best_route(
    holder: ASN, candidates: "list[Route]", salt: int
) -> Optional[Route]:
    """Select the best route among ``candidates`` for ``holder``.

    Returns None when there are no candidates.
    """
    if not candidates:
        return None
    return min(candidates, key=lambda route: route.decision_key(holder, salt))
