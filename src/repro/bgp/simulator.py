"""BGP route propagation over an AS graph for one announcement configuration.

The simulator computes, for every AS, the best route toward the origin's
prefix under the configured announcement ⟨A; P; Q⟩, applying the decision
process of §II (LocalPref → AS-path length → deterministic tiebreaks) and
the import/export policies of :class:`repro.bgp.policy.PolicyModel`.

Propagation is a Gauss-Seidel fixpoint iteration: ASes are visited in a
fixed order, each re-selecting its best route from its neighbors' current
selections, until a full pass changes nothing.  Under Gao-Rexford policies
this converges in a number of passes proportional to the routing-system
diameter; deviant-policy ASes can in principle oscillate, so the iteration
is bounded and the outcome records whether a fixpoint was reached.

Two interchangeable cores implement the iteration:

* ``"indexed"`` (the default): the compiled, integer-indexed frontier
  core in :mod:`repro.bgp.indexed`, which re-evaluates only ASes whose
  neighborhood changed and runs several times faster at every scale
  (~4.5× on a 75k-AS graph once compiled).
* ``"legacy"``: the per-AS dict/object reference implementation kept in
  this module.  It is the executable specification; the indexed core is
  bit-identical to it (routes, catchments, passes, decision changes) and
  the equivalence test suite holds the two together.

Select a core per simulator via ``RoutingSimulator(..., core=...)`` or
process-wide via the ``REPRO_SIM_CORE`` environment variable.  Policies
that override ``accepts``/``exports`` cannot be compiled and silently
fall back to the reference core.

The per-link *catchment* — the set of ASes whose best route descends from
that peering link — falls directly out of the fixpoint.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Mapping, Optional, Tuple

from ..errors import ConvergenceError, SimulationError
from ..topology.graph import ASGraph
from ..topology.peering import OriginNetwork
from ..topology.relationships import Relationship
from ..types import ASN, ASPath, LinkId
from .announcement import AnnouncementConfig
from .indexed import CompiledTopology, policy_is_compilable
from .policy import PolicyModel
from .route import Route, stable_tiebreak

#: Default bound on Gauss-Seidel passes before declaring non-convergence.
DEFAULT_MAX_PASSES = 60

#: Environment variable that picks the propagation core when the
#: ``core=`` constructor argument is omitted.
CORE_ENV_VAR = "REPRO_SIM_CORE"

#: Core used when neither ``core=`` nor the environment selects one.
DEFAULT_CORE = "indexed"

_VALID_CORES = ("indexed", "legacy")


@dataclass
class RoutingOutcome:
    """Result of simulating one announcement configuration.

    Attributes:
        config: the configuration that was simulated.
        routes: best route per AS (ASes with no route are absent).
        catchments: per announced link, the set of ASes routed toward it.
        passes: Gauss-Seidel passes executed.
        decision_changes: total number of best-route changes observed.
        converged: whether a full pass with no changes was reached.
    """

    config: AnnouncementConfig
    routes: Dict[ASN, Route]
    catchments: Dict[LinkId, FrozenSet[ASN]]
    passes: int
    decision_changes: int
    converged: bool
    origin_asn: ASN
    #: All ASes of the simulated topology (shared frozenset, not a copy);
    #: empty on outcomes built by hand before this field existed.
    known_ases: FrozenSet[ASN] = frozenset()
    #: Whether the fixpoint was seeded from a prior outcome's routes.
    warm_started: bool = False

    def route(self, asn: ASN) -> Optional[Route]:
        """Best route of ``asn``, or None if it has no route."""
        return self.routes.get(asn)

    def catchment_of(self, asn: ASN) -> Optional[LinkId]:
        """Peering link whose catchment contains ``asn`` (None if unrouted)."""
        route = self.routes.get(asn)
        return route.link_id if route is not None else None

    @property
    def covered_ases(self) -> FrozenSet[ASN]:
        """ASes holding a route toward the prefix."""
        return frozenset(self.routes)

    def forwarding_path(self, asn: ASN) -> ASPath:
        """Data-plane AS path from ``asn`` to the origin.

        Unlike the control-plane AS-path, this excludes prepending
        repetitions and poison stuffing: it is the chain of ASes packets
        actually traverse, ending at the origin.  Used by the traceroute
        simulation.

        Raises:
            SimulationError: if ``asn`` is not part of the simulated
                topology at all, if it holds no route, or if the next-hop
                chain is broken (only possible on non-converged outcomes).
        """
        if self.known_ases and asn not in self.known_ases:
            raise SimulationError(
                f"AS {asn} is not part of the simulated topology"
            )
        if asn == self.origin_asn:
            return (asn,)
        hops: List[ASN] = [asn]
        current = asn
        for _ in range(len(self.routes) + 2):
            route = self.routes.get(current)
            if route is None:
                raise SimulationError(
                    f"AS {current} holds no route toward the prefix"
                    if current == asn
                    else f"AS {current} (next hop of AS {asn}) holds no route "
                    "toward the prefix"
                )
            next_hop = route.learned_from
            hops.append(next_hop)
            if next_hop == self.origin_asn:
                return tuple(hops)
            current = next_hop
        raise SimulationError(f"forwarding loop detected starting at AS {asn}")


class RoutingSimulator:
    """Propagates announcement configurations over a topology.

    Args:
        graph: AS topology including the attached origin AS.
        origin: the origin network whose links announce the prefix.
        policy: routing policies; a default Gao-Rexford model is built
            when omitted.
        max_passes: bound on fixpoint iterations.
        strict: when True, non-convergence raises
            :class:`repro.errors.ConvergenceError`; when False the
            (still well-defined) state at the bound is returned with
            ``converged=False``.
        core: ``"indexed"`` (compiled frontier core, the default) or
            ``"legacy"`` (reference implementation).  ``None`` defers to
            the ``REPRO_SIM_CORE`` environment variable, then to
            :data:`DEFAULT_CORE`.  Policies overriding
            ``accepts``/``exports`` always run on the legacy core
            regardless of this setting.
    """

    def __init__(
        self,
        graph: ASGraph,
        origin: OriginNetwork,
        policy: Optional[PolicyModel] = None,
        max_passes: int = DEFAULT_MAX_PASSES,
        strict: bool = False,
        core: Optional[str] = None,
    ) -> None:
        for link in origin.links:
            if not graph.has_link(origin.asn, link.provider):
                raise SimulationError(
                    f"origin {origin.asn} not linked to provider {link.provider} "
                    f"of {link.link_id!r} in the topology"
                )
        if max_passes < 1:
            raise SimulationError("max_passes must be positive")
        if core is None:
            core = os.environ.get(CORE_ENV_VAR, "").strip() or DEFAULT_CORE
        if core not in _VALID_CORES:
            raise SimulationError(
                f"unknown simulation core {core!r}; expected one of {_VALID_CORES}"
            )
        self.graph = graph
        self.origin = origin
        self.policy = policy if policy is not None else PolicyModel(graph)
        self.max_passes = max_passes
        self.strict = strict
        self.core = core
        # Stable visit order: hierarchy-ish (providers of the origin first
        # via BFS from the origin) so information flows outward quickly and
        # convergence needs few passes.
        distances = graph.hop_distances([origin.asn])
        self._visit_order: List[ASN] = sorted(
            (asn for asn in graph.ases if asn != origin.asn),
            key=lambda asn: (distances.get(asn, len(graph)), asn),
        )
        # Both caches are built lazily on first use: the indexed core
        # never needs the legacy adjacency dicts and vice versa, and the
        # compiled tables must not ride along when a simulator is pickled
        # to a worker process (see __getstate__).
        self._neighbors: Optional[Dict[ASN, List[Tuple[ASN, Relationship]]]] = None
        self._compiled: Optional[CompiledTopology] = None
        self._known_ases: FrozenSet[ASN] = graph.ases

    # ------------------------------------------------------------------

    def __getstate__(self) -> Dict[str, object]:
        """Pickle without derived caches; workers rebuild them on demand."""
        state = self.__dict__.copy()
        state["_neighbors"] = None
        state["_compiled"] = None
        return state

    @property
    def effective_core(self) -> str:
        """Core that :meth:`simulate` will actually run.

        ``"indexed"`` only when selected *and* the policy's import/export
        logic is compilable; otherwise ``"legacy"``.
        """
        if self.core == "indexed" and policy_is_compilable(self.policy):
            return "indexed"
        return "legacy"

    def simulate(
        self,
        config: AnnouncementConfig,
        warm_start: Optional[Mapping[ASN, Route]] = None,
    ) -> RoutingOutcome:
        """Propagate ``config`` to a fixpoint and return the outcome.

        Args:
            config: the announcement configuration to propagate.
            warm_start: best routes of a previously simulated, similar
                configuration (e.g. the same announcement set without
                prepending).  The fixpoint iteration is seeded from these
                routes instead of the empty state, which typically cuts
                the number of Gauss-Seidel passes substantially.  Seeded
                routes through links the new configuration does not
                announce — or whose AS-path no longer ends in the path
                this configuration announces through their link (e.g.
                after a prepending change) — are discarded; every
                surviving seed is still re-evaluated by the decision
                process, so the fixpoint reached is a genuine stable
                state of ``config`` (route chains can never be circular —
                path lengths grow along them — so at a fixpoint every
                chain terminates in a freshly announced path).  The
                stale-tail filter matters: deviant-policy topologies
                admit multiple stable states, and stale seeds can steer
                the iteration into a different one than a cold start
                reaches.
        """
        self._validate_config(config)
        if self.effective_core == "indexed":
            if self._compiled is None:
                self._compiled = CompiledTopology.compile(
                    self.graph, self.origin, self.policy, self._visit_order
                )
            return self._compiled.propagate(
                config, warm_start, self.max_passes, self.strict,
                self._known_ases,
            )
        return self._simulate_legacy(config, warm_start)

    def _simulate_legacy(
        self,
        config: AnnouncementConfig,
        warm_start: Optional[Mapping[ASN, Route]] = None,
    ) -> RoutingOutcome:
        """Reference Gauss-Seidel sweep (the executable specification)."""
        if self._neighbors is None:
            self._neighbors = {
                asn: sorted(self.graph.neighbors(asn).items())
                for asn in self.graph.ases
            }
        origin_asn = self.origin.asn
        # Iterate the announced set in sorted order everywhere a dict is
        # built from it: LinkIds are strings, so raw set order varies
        # with the interpreter's hash seed, and the insertion order here
        # leaks into every downstream .items() walk and float sum.
        announced_paths: Dict[LinkId, ASPath] = {
            link: config.as_path_for_link(origin_asn, link)
            for link in sorted(config.announced)
        }
        providers_by_asn: Dict[ASN, LinkId] = {
            self.origin.provider_of(link): link
            for link in sorted(config.announced)
        }
        provider_by_link: Dict[LinkId, ASN] = {
            link: provider for provider, link in providers_by_asn.items()
        }

        best: Dict[ASN, Route] = {}
        if warm_start:
            announced = config.announced
            for asn, route in warm_start.items():
                if (
                    route.link_id not in announced
                    or asn == origin_asn
                    or asn not in self._known_ases
                ):
                    continue
                fresh = announced_paths[route.link_id]
                path = route.as_path
                cut = len(path) - len(fresh)
                # Stale-tail filter: drop seeds whose embedded announced
                # path differs from what this configuration announces
                # through the same link (see the docstring above).
                if cut < 0 or path[cut:] != fresh:
                    continue
                best[asn] = route
        decision_changes = 0
        converged = False
        passes = 0
        while passes < self.max_passes:
            passes += 1
            changed = 0
            for asn in self._visit_order:
                new_route = self._select(
                    asn, best, announced_paths, providers_by_asn,
                    provider_by_link, config,
                )
                old_route = best.get(asn)
                if new_route != old_route:
                    changed += 1
                    if new_route is None:
                        del best[asn]
                    else:
                        best[asn] = new_route
            decision_changes += changed
            if changed == 0:
                converged = True
                break
        if not converged and self.strict:
            raise ConvergenceError(
                f"no fixpoint after {self.max_passes} passes for {config.describe()}"
            )

        catchments: Dict[LinkId, set] = {
            link: set() for link in sorted(config.announced)
        }
        for asn, route in best.items():
            catchments[route.link_id].add(asn)
        return RoutingOutcome(
            config=config,
            routes=best,
            catchments={link: frozenset(ases) for link, ases in catchments.items()},
            passes=passes,
            decision_changes=decision_changes,
            converged=converged,
            origin_asn=origin_asn,
            known_ases=self._known_ases,
            warm_started=bool(warm_start),
        )

    # ------------------------------------------------------------------

    def _validate_config(self, config: AnnouncementConfig) -> None:
        known = set(self.origin.link_ids)
        unknown = set(config.announced) - known
        if unknown:
            raise SimulationError(
                f"configuration announces from unknown links {sorted(unknown)}"
            )

    def _select(
        self,
        asn: ASN,
        best: Mapping[ASN, Route],
        announced_paths: Mapping[LinkId, ASPath],
        providers_by_asn: Mapping[ASN, LinkId],
        provider_by_link: Mapping[LinkId, ASN],
        config: AnnouncementConfig,
    ) -> Optional[Route]:
        """Re-run the BGP decision process at ``asn``.

        Candidate filtering (loop prevention, valley-free export, tier-1
        leak filters, no-export action communities at the direct provider)
        happens on the neighbor's stored path to avoid building AS-path
        tuples for losing candidates; the full :class:`Route` is
        materialized only for the winner.
        """
        policy = self.policy
        origin_asn = self.origin.asn
        salt = policy.salt_for(asn)
        best_key = None
        best_choice: Optional[Tuple[ASN, Relationship, Optional[Route], LinkId]] = None

        direct_link = providers_by_asn.get(asn)
        if direct_link is not None:
            origin_path = announced_paths[direct_link]
            relationship = self.graph.relationship(asn, origin_asn)
            if policy.accepts(asn, (), origin_path, relationship):
                local_pref = policy.local_pref(asn, relationship)
                key = (
                    -local_pref,
                    len(origin_path),
                    policy.igp_cost(asn, origin_asn),
                    stable_tiebreak(asn, origin_asn, salt),
                    origin_asn,
                    direct_link,
                )
                best_key = key
                best_choice = (origin_asn, relationship, None, direct_link)

        for neighbor, relationship in self._neighbors[asn]:
            if neighbor == origin_asn:
                continue  # handled above via providers_by_asn
            neighbor_route = best.get(neighbor)
            if neighbor_route is None:
                continue
            if not policy.exports(
                neighbor_route.relationship, self.graph.relationship(neighbor, asn)
            ):
                continue
            # No-export action community: the direct provider honors the
            # origin's request not to announce toward specific neighbors.
            blocked = config.no_export_for_link(neighbor_route.link_id)
            if (
                blocked
                and asn in blocked
                and neighbor == provider_by_link[neighbor_route.link_id]
            ):
                continue
            announced = announced_paths[neighbor_route.link_id]
            stuffed_len = len(announced)
            path = neighbor_route.as_path
            transit = path[:-stuffed_len] if stuffed_len < len(path) else ()
            if not policy.accepts(asn, transit, announced, relationship):
                continue
            local_pref = policy.local_pref(asn, relationship)
            key = (
                -local_pref,
                len(path) + 1,
                policy.igp_cost(asn, neighbor),
                stable_tiebreak(asn, neighbor, salt),
                neighbor,
                neighbor_route.link_id,
            )
            if best_key is None or key < best_key:
                best_key = key
                best_choice = (neighbor, relationship, neighbor_route, neighbor_route.link_id)

        if best_choice is None:
            return None
        learned_from, relationship, via_route, link_id = best_choice
        if via_route is None:
            as_path = announced_paths[link_id]
        else:
            as_path = (learned_from,) + via_route.as_path
        return Route(
            as_path=as_path,
            link_id=link_id,
            learned_from=learned_from,
            relationship=relationship,
            local_pref=policy.local_pref(asn, relationship),
        )
