"""Import/export policies: Gao-Rexford with realistic deviations.

The policy model answers three questions for the simulator:

* **LocalPref** — what preference does AS ``v`` give a route learned from
  a neighbor with a given relationship?  By default the Gao-Rexford
  ordering (customer 300 > peer 200 > provider 100).  A configurable
  fraction of ASes deviates (``policy_noise``), standing in for the
  ASes the paper observes violating the best-relationship criterion
  (Figure 9).
* **Import filtering** — loop prevention (rejecting paths containing the
  AS's own number, which is what BGP poisoning exploits), optionally
  disabled at a small fraction of ASes (§III-A-c notes some ASes disable
  it for traffic engineering); and tier-1 route-leak filtering (a tier-1
  rejects customer routes whose path contains another tier-1), which is
  why poisoning tier-1s tends to fail.
* **Export filtering** — the valley-free rule
  (:func:`repro.topology.relationships.export_allowed`).

All randomness derives from per-AS seeded PRNGs, so a
:class:`PolicyModel` is fully reproducible.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Dict, FrozenSet, Mapping, Optional, Set, Tuple

from ..topology.graph import ASGraph

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations
    from ..topology.geography import GeographyModel
from ..topology.relationships import Relationship, export_allowed
from ..types import ASN, ASPath

#: Deviant LocalPref tables a "noisy" AS may use instead of Gao-Rexford.
#: Each maps relationship → LocalPref.  They are drawn from behaviours
#: observed in routing-policy studies: flat preference (decides on path
#: length), peer-preferred, and provider-preferred (e.g. backup-transit
#: arrangements).
_DEVIANT_TABLES: Tuple[Mapping[Relationship, int], ...] = (
    {Relationship.CUSTOMER: 200, Relationship.PEER: 200, Relationship.PROVIDER: 200},
    {Relationship.CUSTOMER: 200, Relationship.PEER: 300, Relationship.PROVIDER: 100},
    {Relationship.CUSTOMER: 300, Relationship.PEER: 100, Relationship.PROVIDER: 200},
)

_GAO_REXFORD_TABLE: Mapping[Relationship, int] = {
    Relationship.CUSTOMER: Relationship.CUSTOMER.local_preference,
    Relationship.PEER: Relationship.PEER.local_preference,
    Relationship.PROVIDER: Relationship.PROVIDER.local_preference,
}


class PolicyModel:
    """Routing policies for every AS in a topology.

    Args:
        graph: the topology the policies apply to.
        seed: PRNG seed; drives which ASes deviate and how.
        policy_noise: fraction of ASes using a deviant LocalPref table.
        loop_prevention_disabled_fraction: fraction of ASes that do not
            reject paths containing their own ASN (poisoning-immune).
        tier1_leak_filtering: whether tier-1s filter customer routes whose
            AS-path contains another tier-1.
        tiebreak_salt: salt for deterministic decision tiebreaks.
    """

    def __init__(
        self,
        graph: ASGraph,
        seed: int = 0,
        policy_noise: float = 0.05,
        loop_prevention_disabled_fraction: float = 0.02,
        tier1_leak_filtering: bool = True,
        tiebreak_salt: Optional[int] = None,
        geography: Optional["GeographyModel"] = None,
    ) -> None:
        if not 0.0 <= policy_noise <= 1.0:
            raise ValueError("policy_noise must be in [0, 1]")
        if not 0.0 <= loop_prevention_disabled_fraction <= 1.0:
            raise ValueError("loop_prevention_disabled_fraction must be in [0, 1]")
        self.graph = graph
        self.seed = seed
        self.tiebreak_salt = seed if tiebreak_salt is None else tiebreak_salt
        self.tier1_leak_filtering = tier1_leak_filtering
        self.geography = geography
        self._tier1: FrozenSet[ASN] = graph.tier1_ases()
        self._pref_tables: Dict[ASN, Mapping[Relationship, int]] = {}
        self._loop_prevention_disabled: Set[ASN] = set()

        rng = random.Random(seed)
        for asn in sorted(graph.ases):
            if rng.random() < policy_noise:
                table = _DEVIANT_TABLES[rng.randrange(len(_DEVIANT_TABLES))]
            else:
                table = _GAO_REXFORD_TABLE
            self._pref_tables[asn] = table
            if rng.random() < loop_prevention_disabled_fraction:
                self._loop_prevention_disabled.add(asn)

    # ------------------------------------------------------------------

    @property
    def tier1_ases(self) -> FrozenSet[ASN]:
        """Tier-1 ASes as derived from the topology."""
        return self._tier1

    def local_pref(self, holder: ASN, relationship: Relationship) -> int:
        """LocalPref ``holder`` assigns to routes learned under ``relationship``."""
        return self._pref_tables[holder][relationship]

    def follows_gao_rexford(self, asn: ASN) -> bool:
        """True if ``asn`` uses the standard customer>peer>provider table."""
        return self._pref_tables[asn] is _GAO_REXFORD_TABLE

    def loop_prevention_enabled(self, asn: ASN) -> bool:
        """True unless ``asn`` is in the loop-prevention-disabled set."""
        return asn not in self._loop_prevention_disabled

    def salt_for(self, holder: ASN) -> int:
        """Tiebreak salt used for ``holder``'s decisions.

        The base model uses one global salt; subclasses (e.g. the route
        drift model in :mod:`repro.core.staleness`) vary it per AS to
        emulate re-resolved router state.
        """
        return self.tiebreak_salt

    def igp_cost(self, holder: ASN, neighbor: ASN) -> int:
        """Hot-potato tiebreak cost: geographic distance to the neighbor.

        Zero without a geography model (decisions then fall through to the
        stable pseudo-random tiebreak, as before).  This is the BGP
        decision step the paper notes the origin cannot manipulate.
        """
        if self.geography is None:
            return 0
        return self.geography.distance(holder, neighbor)

    # ------------------------------------------------------------------

    def accepts(
        self,
        holder: ASN,
        transit_path: ASPath,
        origin_path: ASPath,
        learned_from_relationship: Relationship,
    ) -> bool:
        """Import filter: would ``holder`` accept this route?

        The AS-path is split into the *transit* portion (ASes that actually
        propagated the route) and the *origin* portion (the path as
        announced by the origin, including prepending repetitions and
        poison stuffing).  A holder always rejects a path it genuinely
        transited (a real forwarding loop); it rejects its own ASN in the
        origin-announced portion — the poisoning mechanism — only when its
        loop prevention is enabled.  Tier-1 route-leak filtering inspects
        the full path.
        """
        if holder in transit_path:
            return False
        if holder in origin_path and self.loop_prevention_enabled(holder):
            return False
        if (
            self.tier1_leak_filtering
            and holder in self._tier1
            and learned_from_relationship is Relationship.CUSTOMER
        ):
            for asn in transit_path:
                if asn != holder and asn in self._tier1:
                    return False
            for asn in origin_path:
                if asn != holder and asn in self._tier1:
                    return False
        return True

    def exports(
        self, learned_from: Relationship, export_to: Relationship
    ) -> bool:
        """Export filter: valley-free rule."""
        return export_allowed(learned_from, export_to)
