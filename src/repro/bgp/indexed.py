"""Integer-indexed, frontier-driven core for BGP route propagation.

:class:`~repro.bgp.simulator.RoutingSimulator`'s reference implementation
keeps per-AS state in dictionaries keyed by ASN and re-derives policy
answers (LocalPref, IGP cost, tiebreak salts, export filters) through
method calls on every candidate evaluation of every Gauss-Seidel pass.
That is perfect as an executable specification and hopeless at CAIDA
scale (~75k ASes): a single fixpoint touches every AS every pass even
when only a handful of routes are still moving.

This module compiles the *static* part of a simulation once per
simulator and then propagates each configuration over dense integer
state:

* ASNs are mapped to dense indices; the adjacency becomes one flattened
  CSR-style edge array (``off``/``adj``).
* Every per-edge decision constant — negated LocalPref, IGP cost, the
  salted CRC32 tiebreak, the valley-free export mask — is precomputed
  into parallel arrays, so the inner loop does list indexing instead of
  policy method calls.
* Route state lives in parallel arrays (link index, AS-path length,
  relationship class, LocalPref, path tuple) instead of
  :class:`~repro.bgp.route.Route` objects; ``Route`` objects are
  materialized once, for the final outcome.
* Only *dirty* ASes are re-evaluated: an AS is scheduled exactly when a
  neighbor's route changed since its last evaluation.  Scheduling is
  position-ordered (a heap over visit positions), which makes the
  trajectory — every intermediate route, every per-pass change count,
  the number of passes — **bit-identical** to the reference sweep: a
  re-evaluation whose inputs did not change is a provable no-op, so
  skipping it cannot alter the outcome.

On storage choices: plain Python lists are used deliberately.  The inner
loop performs scalar indexed reads, and CPython reads a boxed int out of
a list faster than it unboxes one out of a NumPy array; NumPy pays off
for whole-array arithmetic, which a Gauss-Seidel sweep with per-candidate
policy filters does not expose.  The project therefore stays
stdlib-only on this hot path (the ``tight Python lists`` branch), and no
optional dependency gate is needed.

The compiled core reproduces the *base* :class:`PolicyModel` import and
export semantics.  Policy subclasses that override only per-AS scalars
(``salt_for``, ``local_pref``, ``igp_cost``, ``loop_prevention_enabled``)
are compiled faithfully — the compiler calls those methods.  Subclasses
that override ``accepts``/``exports`` themselves cannot be compiled;
:func:`policy_is_compilable` detects that and the simulator falls back
to the reference implementation.
"""

from __future__ import annotations

import heapq
from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Tuple

from ..errors import ConvergenceError
from ..topology.graph import ASGraph
from ..topology.peering import OriginNetwork
from ..topology.relationships import Relationship
from ..types import ASN, ASPath, LinkId
from .announcement import AnnouncementConfig
from .policy import PolicyModel
from .route import Route, stable_tiebreak

_CUSTOMER = Relationship.CUSTOMER
_RELATIONSHIPS = (
    Relationship.CUSTOMER,
    Relationship.PEER,
    Relationship.PROVIDER,
)

_BASE_ACCEPTS = PolicyModel.accepts
_BASE_EXPORTS = PolicyModel.exports


def policy_is_compilable(policy: PolicyModel) -> bool:
    """True when ``policy``'s import/export *logic* is the base model's.

    The compiler inlines the base ``accepts``/``exports`` semantics, so a
    subclass overriding either must run through the reference simulator
    instead.  Overrides of the scalar hooks (``salt_for``,
    ``local_pref``, ``igp_cost``, ``loop_prevention_enabled``) are fine:
    the compiler calls them per AS/edge and bakes in their answers.
    """
    return (
        type(policy).accepts is _BASE_ACCEPTS
        and type(policy).exports is _BASE_EXPORTS
    )


class CompiledTopology:
    """Per-simulator compiled arrays for the indexed propagation core.

    Built once by :meth:`compile`; :meth:`propagate` then runs any number
    of configurations over it.  The compiled tables are derived purely
    from ``(graph, origin, policy)``, so a compiled core and the
    reference simulator over the same substrate are interchangeable.
    """

    __slots__ = (
        "asns",
        "index",
        "n",
        "origin_asn",
        "origin_idx",
        "order",
        "pos",
        "off",
        "adj",
        "e_neg_lp",
        "e_igp",
        "e_tb",
        "e_asn",
        "e_rel",
        "e_exp",
        "loop_prev",
        "t1f",
        "tier1",
        "direct_consts",
        "link_ids",
        "link_index",
        "link_provider_idx",
        "num_edges",
    )

    @classmethod
    def compile(
        cls,
        graph: ASGraph,
        origin: OriginNetwork,
        policy: PolicyModel,
        visit_order: Sequence[ASN],
    ) -> "CompiledTopology":
        """Flatten ``graph`` + ``policy`` into dense arrays.

        Args:
            graph: topology including the attached origin AS.
            origin: the announcing origin network.
            policy: a policy whose import/export logic is compilable
                (see :func:`policy_is_compilable`).
            visit_order: the reference simulator's Gauss-Seidel visit
                order (all ASes except the origin), reused verbatim so
                trajectories match.
        """
        self = cls()
        origin_asn = origin.asn
        asns = sorted(graph.ases)
        index = {asn: i for i, asn in enumerate(asns)}
        n = len(asns)

        order = [index[asn] for asn in visit_order]
        pos = [-1] * n
        for position, i in enumerate(order):
            pos[i] = position

        tier1 = policy.tier1_ases
        t1_filtering = policy.tier1_leak_filtering
        loop_prev = bytearray(n)
        t1f = bytearray(n)
        off = [0] * (n + 1)
        adj: List[int] = []
        e_neg_lp: List[int] = []
        e_igp: List[int] = []
        e_tb: List[int] = []
        e_asn: List[ASN] = []
        e_rel: List[Relationship] = []
        e_exp: List[int] = []
        direct_consts: Dict[int, Tuple[int, int, int, Relationship]] = {}

        for i, asn in enumerate(asns):
            loop_prev[i] = 1 if policy.loop_prevention_enabled(asn) else 0
            t1f[i] = 1 if (t1_filtering and asn in tier1) else 0
            salt = policy.salt_for(asn)
            for neighbor, rel in sorted(graph.neighbors(asn).items()):
                lp = policy.local_pref(asn, rel)
                igp = policy.igp_cost(asn, neighbor)
                tb = stable_tiebreak(asn, neighbor, salt)
                # Export mask: bit r set when the neighbor exports routes
                # learned under Relationship(r) toward this AS.  The
                # second argument is the relationship of this AS as seen
                # from the neighbor — the stored inverse annotation.
                inverse = rel.inverse
                mask = 0
                for learned in _RELATIONSHIPS:
                    if policy.exports(learned, inverse):
                        mask |= 1 << learned
                adj.append(index[neighbor])
                e_neg_lp.append(-lp)
                e_igp.append(igp)
                e_tb.append(tb)
                e_asn.append(neighbor)
                e_rel.append(rel)
                e_exp.append(mask)
                if neighbor == origin_asn:
                    direct_consts[i] = (-lp, igp, tb, rel)
            off[i + 1] = len(adj)

        link_ids = list(origin.link_ids)
        self.asns = asns
        self.index = index
        self.n = n
        self.origin_asn = origin_asn
        self.origin_idx = index[origin_asn]
        self.order = order
        self.pos = pos
        self.off = off
        self.adj = adj
        self.e_neg_lp = e_neg_lp
        self.e_igp = e_igp
        self.e_tb = e_tb
        self.e_asn = e_asn
        self.e_rel = e_rel
        self.e_exp = e_exp
        self.loop_prev = loop_prev
        self.t1f = t1f
        self.tier1 = tier1
        self.direct_consts = direct_consts
        self.link_ids = link_ids
        self.link_index = {link: k for k, link in enumerate(link_ids)}
        self.link_provider_idx = [
            index[origin.provider_of(link)] for link in link_ids
        ]
        self.num_edges = len(adj)
        return self

    # ------------------------------------------------------------------

    def propagate(
        self,
        config: AnnouncementConfig,
        warm_start: Optional[Mapping[ASN, Route]],
        max_passes: int,
        strict: bool,
        known_ases: FrozenSet[ASN],
    ):
        """Propagate ``config`` to a fixpoint; mirror of the reference loop.

        Returns a :class:`~repro.bgp.simulator.RoutingOutcome` that is
        bit-identical (routes, catchments, passes, decision changes,
        convergence flag) to what the reference simulator produces for
        the same ``(config, warm_start)``.
        """
        from .simulator import RoutingOutcome  # local: avoid import cycle

        asns = self.asns
        n = self.n
        origin_asn = self.origin_asn
        link_index = self.link_index
        link_ids = self.link_ids
        num_links = len(link_ids)

        # -- per-configuration tables ----------------------------------
        opath: List[Optional[ASPath]] = [None] * num_links
        oset: List[Optional[FrozenSet[ASN]]] = [None] * num_links
        olen = [0] * num_links
        ot1: List[Optional[FrozenSet[ASN]]] = [None] * num_links
        tier1 = self.tier1
        for link in config.announced:
            k = link_index[link]
            path = config.as_path_for_link(origin_asn, link)
            opath[k] = path
            olen[k] = len(path)
            oset[k] = frozenset(path)
            ot1[k] = frozenset(a for a in path if a in tier1)
        direct_link = [-1] * n
        for link in config.announced:
            k = link_index[link]
            direct_link[self.link_provider_idx[k]] = k
        noexp: Optional[Dict[int, Tuple[int, FrozenSet[ASN]]]] = None
        if config.no_export:
            noexp = {}
            for link, blocked in config.no_export.items():
                k = link_index[link]
                noexp[k] = (self.link_provider_idx[k], blocked)

        # -- route state ------------------------------------------------
        r_link = [-1] * n
        r_from: List[ASN] = [0] * n
        r_rel: List[Optional[Relationship]] = [None] * n
        r_lp = [0] * n
        r_plen = [0] * n
        r_path: List[Optional[ASPath]] = [None] * n
        # The tail object each stored path was built from; identity lets
        # an unchanged re-selection skip rebuilding/comparing the tuple.
        r_tail: List[Optional[ASPath]] = [None] * n

        if warm_start:
            announced_set = config.announced
            index = self.index
            for asn, route in warm_start.items():
                link = route.link_id
                if link not in announced_set or asn == origin_asn:
                    continue
                i = index.get(asn)
                if i is None:
                    continue
                k = link_index[link]
                fresh = opath[k]
                path = route.as_path
                cut = len(path) - olen[k]
                # Seed-filter contract (shared with the reference
                # simulator): a seeded route must still end in exactly
                # the AS-path this configuration announces through its
                # link, else it is a stale state that can steer the
                # fixpoint away from the cold one.
                if cut < 0 or path[cut:] != fresh:
                    continue
                r_link[i] = k
                r_from[i] = route.learned_from
                r_rel[i] = route.relationship
                r_lp[i] = route.local_pref
                r_plen[i] = len(path)
                r_path[i] = path

        # -- local aliases for the hot loop ----------------------------
        off = self.off
        adj = self.adj
        e_neg_lp = self.e_neg_lp
        e_igp = self.e_igp
        e_tb = self.e_tb
        e_asn = self.e_asn
        e_rel = self.e_rel
        e_exp = self.e_exp
        loop_prev = self.loop_prev
        t1f = self.t1f
        direct_consts = self.direct_consts
        order = self.order
        pos = self.pos
        heappush = heapq.heappush
        heappop = heapq.heappop

        # Pass 1 schedules every AS (the reference sweep does too); later
        # passes only schedule ASes with a changed neighbor.
        heap = list(range(len(order)))  # ascending == already a valid heap
        in_cur = bytearray(n)
        for i in order:
            in_cur[i] = 1
        in_next = bytearray(n)
        nxt: List[int] = []

        passes = 0
        decision_changes = 0
        converged = False
        while passes < max_passes:
            passes += 1
            changed = 0
            while heap:
                p = heappop(heap)
                i = order[p]
                in_cur[i] = 0
                asn = asns[i]
                best_key: Optional[Tuple] = None
                b_link = -1
                b_from: ASN = 0
                b_rel: Optional[Relationship] = None
                b_tail: Optional[ASPath] = None
                b_direct = False

                k = direct_link[i]
                if k >= 0:
                    neg_lp, igp, tb, drel = direct_consts[i]
                    ok = not (loop_prev[i] and asn in oset[k])
                    if ok and t1f[i] and drel is _CUSTOMER:
                        t1s = ot1[k]
                        if t1s and (len(t1s) > 1 or asn not in t1s):
                            ok = False
                    if ok:
                        best_key = (neg_lp, olen[k], igp, tb, origin_asn)
                        b_link = k
                        b_from = origin_asn
                        b_rel = drel
                        b_tail = opath[k]
                        b_direct = True

                for e in range(off[i], off[i + 1]):
                    j = adj[e]
                    lk = r_link[j]
                    if lk < 0:
                        continue
                    if not (e_exp[e] >> r_rel[j]) & 1:
                        continue
                    if noexp is not None:
                        t = noexp.get(lk)
                        if t is not None and j == t[0] and asn in t[1]:
                            continue
                    key = (
                        e_neg_lp[e],
                        r_plen[j] + 1,
                        e_igp[e],
                        e_tb[e],
                        e_asn[e],
                    )
                    # Losing candidates never need the (path-scanning)
                    # import filters: the argmin over accepted candidates
                    # is unchanged by skipping filters on keys that
                    # cannot win.  Keys are unique per neighbor, so the
                    # comparison is strict.
                    if best_key is not None and best_key <= key:
                        continue
                    jpath = r_path[j]
                    if loop_prev[i]:
                        if asn in jpath:
                            continue
                    else:
                        cut = len(jpath) - olen[lk]
                        if cut > 0 and asn in jpath[:cut]:
                            continue
                    rel = e_rel[e]
                    if t1f[i] and rel is _CUSTOMER:
                        leak = False
                        for a in jpath:
                            if a != asn and a in tier1:
                                leak = True
                                break
                        if leak:
                            continue
                    best_key = key
                    b_link = lk
                    b_from = e_asn[e]
                    b_rel = rel
                    b_tail = jpath
                    b_direct = False

                if best_key is None:
                    if r_link[i] < 0:
                        continue
                    r_link[i] = -1
                    r_path[i] = None
                    r_tail[i] = None
                else:
                    b_lp = -best_key[0]
                    same_scalars = (
                        r_link[i] == b_link
                        and r_from[i] == b_from
                        and r_rel[i] is b_rel
                        and r_lp[i] == b_lp
                    )
                    if same_scalars and b_tail is r_tail[i]:
                        continue
                    new_path = b_tail if b_direct else (b_from,) + b_tail
                    if same_scalars and new_path == r_path[i]:
                        r_tail[i] = b_tail
                        continue
                    r_link[i] = b_link
                    r_from[i] = b_from
                    r_rel[i] = b_rel
                    r_lp[i] = b_lp
                    r_plen[i] = len(new_path)
                    r_path[i] = new_path
                    r_tail[i] = b_tail

                changed += 1
                for e in range(off[i], off[i + 1]):
                    j = adj[e]
                    pj = pos[j]
                    if pj < 0:
                        continue  # the origin is never evaluated
                    if pj > p:
                        # The reference sweep visits j later this pass
                        # and would see this change now.
                        if not in_cur[j]:
                            in_cur[j] = 1
                            heappush(heap, pj)
                    elif not in_next[j]:
                        in_next[j] = 1
                        nxt.append(pj)

            decision_changes += changed
            if changed == 0:
                converged = True
                break
            heap = nxt
            heap.sort()
            for pj in heap:
                j = order[pj]
                in_next[j] = 0
                in_cur[j] = 1
            nxt = []

        if not converged and strict:
            raise ConvergenceError(
                f"no fixpoint after {max_passes} passes for {config.describe()}"
            )

        routes: Dict[ASN, Route] = {}
        # Sorted so the catchment dict's order (and every downstream
        # float sum over it) is independent of the string hash seed.
        catchments: Dict[LinkId, set] = {
            link: set() for link in sorted(config.announced)
        }
        sets_by_idx: List[Optional[set]] = [None] * num_links
        for link in config.announced:
            sets_by_idx[link_index[link]] = catchments[link]
        for i in order:
            k = r_link[i]
            if k < 0:
                continue
            asn = asns[i]
            routes[asn] = Route(
                as_path=r_path[i],
                link_id=link_ids[k],
                learned_from=r_from[i],
                relationship=r_rel[i],
                local_pref=r_lp[i],
            )
            sets_by_idx[k].add(asn)
        return RoutingOutcome(
            config=config,
            routes=routes,
            catchments={
                link: frozenset(members)
                for link, members in catchments.items()
            },
            passes=passes,
            decision_changes=decision_changes,
            converged=converged,
            origin_asn=origin_asn,
            known_ases=known_ases,
            warm_started=bool(warm_start),
        )
