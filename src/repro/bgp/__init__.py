"""BGP substrate: announcements, routes, policies, and propagation."""

from .announcement import DEFAULT_PREPEND_COUNT, AnnouncementConfig, anycast_all
from .convergence import (
    DEFAULT_MRAI_SECONDS,
    ConvergenceEngine,
    ConvergenceParams,
    ConvergenceResult,
)
from .policy import PolicyModel
from .route import Route, best_route, stable_tiebreak
from .simulator import DEFAULT_MAX_PASSES, RoutingOutcome, RoutingSimulator


def make_engine(simulator: RoutingSimulator, **kwargs):
    """Wrap a :class:`RoutingSimulator` in a caching/parallel engine.

    Thin convenience hook so callers holding only a BGP-layer simulator
    can opt into memoized (and optionally multi-process) simulation
    without importing :mod:`repro.core` directly.  Keyword arguments
    (``workers``, ``spec``, ``warm_start``, ``cache_size``) pass through
    to :class:`repro.core.engine.SimulationEngine`.
    """
    from ..core.engine import SimulationEngine

    return SimulationEngine(simulator, **kwargs)


__all__ = [
    "AnnouncementConfig",
    "anycast_all",
    "DEFAULT_PREPEND_COUNT",
    "PolicyModel",
    "Route",
    "best_route",
    "stable_tiebreak",
    "RoutingOutcome",
    "RoutingSimulator",
    "DEFAULT_MAX_PASSES",
    "ConvergenceEngine",
    "ConvergenceParams",
    "ConvergenceResult",
    "DEFAULT_MRAI_SECONDS",
    "make_engine",
]
