"""BGP substrate: announcements, routes, policies, and propagation."""

from .announcement import DEFAULT_PREPEND_COUNT, AnnouncementConfig, anycast_all
from .convergence import (
    DEFAULT_MRAI_SECONDS,
    ConvergenceEngine,
    ConvergenceParams,
    ConvergenceResult,
)
from .policy import PolicyModel
from .route import Route, best_route, stable_tiebreak
from .simulator import DEFAULT_MAX_PASSES, RoutingOutcome, RoutingSimulator

__all__ = [
    "AnnouncementConfig",
    "anycast_all",
    "DEFAULT_PREPEND_COUNT",
    "PolicyModel",
    "Route",
    "best_route",
    "stable_tiebreak",
    "RoutingOutcome",
    "RoutingSimulator",
    "DEFAULT_MAX_PASSES",
    "ConvergenceEngine",
    "ConvergenceParams",
    "ConvergenceResult",
    "DEFAULT_MRAI_SECONDS",
]
