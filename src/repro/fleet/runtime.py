"""The fleet runtime: N concurrent attacks across M tenants, one process.

:class:`FleetRuntime` is the provider-side control plane the paper's
operational story implies: a transit provider runs BGP-steered traceback
for *many* customer origin networks at once, each possibly under several
simultaneous spoofed-traffic attacks.  The runtime

* consumes one merged, timestamped event stream (attack launches plus
  operator actions — see :mod:`repro.fleet.stream`) through a bounded
  front-end queue (asyncio driver) or directly (serial driver); both
  drivers apply the identical sequence and produce identical reports,
* routes each event to a per-attack :class:`~repro.fleet.shard.AttackShard`
  keyed by ``(tenant, prefix)``,
* interleaves shard work under the
  :class:`~repro.fleet.scheduler.FleetScheduler`'s weighted fair share
  (no shard starves, quotas hold, ``max_active`` admission bounds how
  many live services exist at once — pending launches queue in
  fair-share order, the fleet's backpressure),
* shares one :class:`~repro.core.engine.SimulationEngine` (LRU cache +
  worker pool) per tenant across that tenant's shards, built lazily on
  first admission,
* contains shard crashes (scripted ``crash`` events or exceptions
  escaping a shard) and resumes from the shard's namespaced checkpoint,
* and keeps one per-tenant :class:`~repro.obs.slo.SloWatchdog` fed by
  the tenant's events off the shared bus, so breach counters carry the
  ``tenant`` label.

Determinism: shards share no mutable state (each has its own RNG-free
stateless seeding, queue, attributor, clock), so per-shard results are
invariant under interleaving — the fair-share order affects only *when*
a shard's windows run, never what they contain.  Event minutes are
barriers on simulated clocks, never wall time.  Hence the fleet digest
(hash over every shard's attribution and checkpoint digests) is a pure
function of the spec and event stream.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import os
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from ..core.engine import SimulationEngine
from ..errors import FleetError, LiveServiceError
from ..live.service import WindowStats
from ..obs import Observability
from ..obs.flight import FlightRecorder
from ..obs.slo import DEFAULT_SLOS, SloRule, SloWatchdog
from .obs import TaggedBus, TaggedRegistry, shard_observability
from .scheduler import FleetScheduler
from .shard import DONE, FAILED, PENDING, AttackShard, ShardReport
from .spec import AttackSpec, FleetSpec, ShardKey
from .stream import (
    CHECKPOINT,
    CRASH,
    DRAIN,
    EVICT,
    LAUNCH,
    FleetEvent,
    iter_stream,
    scripted_stream,
)

#: Contained-exception resumes per shard before the runtime gives up (a
#: deterministic bug would otherwise crash-loop forever).
DEFAULT_MAX_RESUMES = 3

#: Callback invoked after every completed shard window.
WindowCallback = Callable[[ShardKey, WindowStats], None]


def fleet_digest(
    reports: Sequence[ShardReport], include_checkpoints: bool = True
) -> str:
    """SHA-256 over every shard's attribution + checkpoint digests.

    The one-line byte-determinism witness for a whole campaign: equal
    digests mean every shard attributed identically and persisted
    identical checkpoint bytes.  With ``include_checkpoints=False`` the
    digest covers attributions only — the comparison a soak campaign
    that deliberately wrote mixed checkpoint *schema versions* still
    passes, since the science is identical even where the envelope
    bytes differ.
    """
    canonical = json.dumps(
        [
            {
                "tenant": report.tenant,
                "prefix": report.prefix,
                "attribution": report.attribution_digest,
                "checkpoint": (
                    report.checkpoint_digest if include_checkpoints else ""
                ),
            }
            for report in sorted(reports, key=lambda r: r.key)
        ],
        sort_keys=True,
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


@dataclass
class FleetReport:
    """Final accounting for one fleet run."""

    shards: List[ShardReport]
    scheduler: Dict[str, object] = field(default_factory=dict)
    events_applied: int = 0
    events_missed: int = 0
    crashes: int = 0
    resumes: int = 0
    migrations: int = 0

    @property
    def digest(self) -> str:
        """The campaign-wide determinism witness."""
        return fleet_digest(self.shards)

    def by_tenant(self) -> Dict[str, List[ShardReport]]:
        grouped: Dict[str, List[ShardReport]] = {}
        for report in self.shards:
            grouped.setdefault(report.tenant, []).append(report)
        return grouped

    def as_dict(self) -> Dict[str, object]:
        return {
            "digest": self.digest,
            "events_applied": self.events_applied,
            "events_missed": self.events_missed,
            "crashes": self.crashes,
            "resumes": self.resumes,
            "migrations": self.migrations,
            "scheduler": self.scheduler,
            "shards": [report.as_dict() for report in self.shards],
        }


class FleetRuntime:
    """Drives a multi-tenant, multi-attack campaign to completion.

    Args:
        spec: the frozen campaign recipe.
        events: merged event stream to consume (default: the spec's
            canonical :func:`~repro.fleet.stream.scripted_stream` —
            every launch, no control events).
        obs: shared observability bundle; shards and engines run under
            tenant/attack-tagged views of it.
        workers: simulation workers per tenant engine.
        checkpoint_dir: directory for per-shard namespaced checkpoints
            ("" disables persistence; crash recovery then restarts
            shards from scratch).
        auto_resume: resume failed shards immediately (both scripted
            crashes and contained exceptions), up to ``max_resumes``
            per shard.
        max_resumes: contained-crash resume budget per shard.
        slo_rules: per-tenant watchdog rules (default
            :data:`~repro.obs.slo.DEFAULT_SLOS`).
        injector_factory: builds one fault injector *per shard* (called
            with the :class:`~repro.fleet.spec.AttackSpec` at spawn).
            Per-shard injectors keep chaos draws independent of the
            fair-share interleaving; a single shared injector would
            entangle every shard's fault ordinals.
        engine_injector_factory: builds one fault injector *per tenant
            engine* (called with the tenant name).  Engine faults
            (worker crashes/hangs) are contained with byte-identical
            results, so the soak harness escalates these per epoch via
            :meth:`set_engine_injector_factory` without perturbing the
            campaign digest.
        skip_events: number of leading stream events to treat as already
            applied (a rebuilt runtime after a process-style restart
            resumes consumption mid-stream; pair with :meth:`adopt` for
            the shards those skipped launches created).
        flight_dir: directory for per-shard flight-recorder bundles
            ("" leaves flight recording off).  Each shard gets a
            :class:`~repro.obs.flight.FlightRecorder` riding the shared
            bus filtered to its own tenant/attack tags (plus its fault
            injector), dumping on crash, kill, and rollback.
        flight_capacity: ring size of each shard's recorder.
    """

    def __init__(
        self,
        spec: FleetSpec,
        events: Optional[Sequence[FleetEvent]] = None,
        obs: Optional[Observability] = None,
        workers: int = 1,
        checkpoint_dir: str = "",
        auto_resume: bool = True,
        max_resumes: int = DEFAULT_MAX_RESUMES,
        slo_rules: Sequence[SloRule] = DEFAULT_SLOS,
        injector_factory: Optional[Callable[[AttackSpec], object]] = None,
        engine_injector_factory: Optional[Callable[[str], object]] = None,
        skip_events: int = 0,
        flight_dir: str = "",
        flight_capacity: int = 256,
    ) -> None:
        self.spec = spec
        self.obs = obs if obs is not None else Observability()
        self.workers = workers
        self.checkpoint_dir = checkpoint_dir
        self.auto_resume = auto_resume
        self.max_resumes = max_resumes
        self.injector_factory = injector_factory
        self.engine_injector_factory = engine_injector_factory
        self.flight_dir = flight_dir
        self.flight_capacity = flight_capacity
        self.flights: Dict[ShardKey, "FlightRecorder"] = {}
        self._slo_rules = tuple(slo_rules)
        self.events: List[FleetEvent] = list(
            events if events is not None else scripted_stream(spec)
        )
        if not 0 <= skip_events <= len(self.events):
            raise FleetError(
                f"cannot skip {skip_events} of {len(self.events)} events"
            )
        self._cursor = skip_events
        self._last_event_minute = (
            self.events[skip_events - 1].minute if skip_events else 0.0
        )
        self.scheduler = FleetScheduler(
            quotas=spec.quota_weights(), max_active=spec.max_active
        )
        self.shards: Dict[ShardKey, AttackShard] = {}
        self._pending: List[ShardKey] = []
        self._testbeds: Dict[str, object] = {}
        self._engines: Dict[str, SimulationEngine] = {}
        self.watchdogs: Dict[str, SloWatchdog] = {}
        self.events_applied = 0
        self.missed_events: List[FleetEvent] = []
        self._closed = False
        if self.obs.bus is not None:
            self.obs.bus.attach(self._route_to_watchdog)

    # -- observability --------------------------------------------------

    def _route_to_watchdog(self, event) -> None:
        """Bus listener: feed tenant-labelled events to that tenant's
        watchdog (untagged events belong to no tenant)."""
        tenant = event.get("tenant")
        if not tenant:
            return
        watchdog = self.watchdogs.get(str(tenant))
        if watchdog is not None:
            watchdog.observe(event)

    def _ensure_watchdog(self, tenant: str) -> SloWatchdog:
        watchdog = self.watchdogs.get(tenant)
        if watchdog is None:
            registry = (
                TaggedRegistry(self.obs.registry, tenant=tenant)
                if self.obs.registry is not None
                else None
            )
            watchdog = SloWatchdog(self._slo_rules, registry=registry)
            self.watchdogs[tenant] = watchdog
        return watchdog

    def _publish(self, action: str, shard: AttackShard, **extra) -> None:
        if self.obs.bus is not None:
            self.obs.bus.publish(
                "fleet",
                action=action,
                tenant=shard.tenant,
                attack=shard.label,
                state=shard.state,
                clock_minutes=round(shard.clock_minutes, 6),
                **extra,
            )
        if self.obs.registry is not None:
            self.obs.registry.counter(
                "repro_fleet_actions_total",
                help="fleet lifecycle actions, by action and tenant",
                labels={"action": action, "tenant": shard.tenant},
            ).inc()

    # -- tenant resources -----------------------------------------------

    def _tenant_resources(self, shard: AttackShard):
        """The tenant's shared testbed + engine, built on first use."""
        tenant = shard.tenant
        if tenant not in self._testbeds:
            spec = shard.attack.testbed
            testbed = spec.build()
            bus = (
                TaggedBus(self.obs.bus, tenant=tenant)
                if self.obs.bus is not None
                else None
            )
            engine = SimulationEngine(
                testbed.simulator,
                workers=self.workers,
                spec=spec,
                bus=bus,
                injector=(
                    self.engine_injector_factory(tenant)
                    if self.engine_injector_factory is not None
                    else None
                ),
            )
            self._testbeds[tenant] = testbed
            self._engines[tenant] = engine
        return self._testbeds[tenant], self._engines[tenant]

    def set_engine_injector_factory(
        self, factory: Optional[Callable[[str], object]]
    ) -> None:
        """Swap the per-tenant engine fault injectors (soak escalation).

        Applies to engines already built *and* to tenants admitted
        later.  Engine faults are result-preserving (contained retries),
        so escalating between epochs never perturbs the digest.
        """
        self.engine_injector_factory = factory
        for tenant, engine in self._engines.items():
            engine.injector = factory(tenant) if factory is not None else None

    # -- shard lifecycle -------------------------------------------------

    def spawn(self, attack: AttackSpec) -> AttackShard:
        """Register a new shard; it queues for admission."""
        if attack.key in self.shards:
            raise FleetError(f"shard {attack.label} already exists")
        injector = (
            self.injector_factory(attack)
            if self.injector_factory is not None
            else None
        )
        flight = None
        if self.flight_dir:
            flight = FlightRecorder(
                name=attack.label,
                capacity=self.flight_capacity,
                directory=self.flight_dir,
                context={
                    "tenant": attack.tenant,
                    "shard": attack.label,
                    "seed": self.spec.seed,
                },
                tag_filter={"tenant": attack.tenant, "attack": attack.label},
            )
            flight.attach(bus=self.obs.bus, injector=injector)
            self.flights[attack.key] = flight
        shard = AttackShard(
            attack,
            checkpoint_dir=self.checkpoint_dir,
            checkpoint_every=self.spec.checkpoint_every,
            checkpoint_keep=self.spec.checkpoint_keep,
            obs=shard_observability(self.obs, attack.tenant, attack.label),
            injector=injector,
            flight=flight,
        )
        self.shards[attack.key] = shard
        self.scheduler.register(attack.key, attack.tenant)
        self._ensure_watchdog(attack.tenant)
        self._pending.append(attack.key)
        self._publish("spawn", shard)
        return shard

    def _shard(self, key: ShardKey) -> AttackShard:
        shard = self.shards.get(key)
        if shard is None:
            raise FleetError(f"no shard {key[0]}/{key[1]} in the fleet")
        return shard

    def crash(self, key: ShardKey) -> None:
        """Kill a shard's live service (its in-memory state is lost)."""
        shard = self._shard(key)
        shard.crash()
        self._publish("crash", shard)
        if self.auto_resume:
            self.resume(key)

    def resume(self, key: ShardKey) -> bool:
        """Recover a failed shard from its checkpoint (or from scratch)."""
        shard = self._shard(key)
        testbed, engine = self._tenant_resources(shard)
        from_checkpoint = shard.resume(testbed, engine, workers=self.workers)
        self._publish(
            "resume", shard, from_checkpoint=from_checkpoint
        )
        return from_checkpoint

    def adopt(self, attack: AttackSpec) -> bool:
        """Re-register an attack after a whole-process-style restart.

        The launch event already applied in a previous runtime (skip it
        with ``skip_events``); this re-creates the shard and resumes it
        from its on-disk checkpoint when one exists (True).  Without a
        checkpoint — or when every on-disk document is damaged — the
        shard queues for a from-scratch replay (False), which reaches
        the byte-identical final attribution anyway because scenarios
        are stateless-seeded.
        """
        shard = self.spawn(attack)
        if not (
            shard.checkpoint_path and os.path.exists(shard.checkpoint_path)
        ):
            return False
        self._pending.remove(attack.key)
        shard.mark_restart()
        try:
            return self.resume(attack.key)
        except LiveServiceError as exc:
            shard.error = f"{type(exc).__name__}: {exc}"
            shard.state = PENDING
            self._pending.append(attack.key)
            self._publish("adopt_fallback", shard)
            return False

    def drain(self, key: ShardKey) -> None:
        """Ask a shard to finish gracefully, keeping its evidence."""
        shard = self._shard(key)
        shard.drain()
        if key in self._pending:
            self._pending.remove(key)
        if shard.finished:
            self._retire(shard)
        self._publish("drain", shard)

    def evict(self, key: ShardKey) -> None:
        """Remove a shard immediately."""
        shard = self._shard(key)
        shard.evict()
        if key in self._pending:
            self._pending.remove(key)
        self._retire(shard)
        self._publish("evict", shard)

    def _retire(self, shard: AttackShard) -> None:
        """Drop a finished shard from scheduling (debt is retained)."""
        self.scheduler.unregister(shard.key)

    # -- stepping --------------------------------------------------------

    def _active_count(self) -> int:
        return sum(
            1 for shard in self.shards.values() if shard.service is not None
        )

    def _admit(self) -> None:
        """Admit pending shards in fair-share order while slots allow.

        Activation runs the shard's pre-measurement through the tenant's
        shared engine, so sibling admissions after the first are mostly
        LRU cache hits.
        """
        while self._pending and self.scheduler.can_admit(self._active_count()):
            key = self.scheduler.admission_order(self._pending)[0]
            self._pending.remove(key)
            shard = self.shards[key]
            testbed, engine = self._tenant_resources(shard)
            shard.activate(testbed, engine, workers=self.workers)
            self._publish("admit", shard)

    def _runnable(self) -> List[ShardKey]:
        return [key for key, shard in self.shards.items() if shard.runnable]

    def _step_once(
        self,
        on_window: Optional[WindowCallback] = None,
        horizon: Optional[float] = None,
    ) -> bool:
        """One fair-share unit of fleet work; True while any remains.

        With a ``horizon`` (simulated minutes), shards whose clock has
        reached it are held back — the epoch boundary of the soak
        harness's :meth:`run_until`.
        """
        self._admit()
        runnable = self._runnable()
        if horizon is not None:
            runnable = [
                key
                for key in runnable
                if self.shards[key].clock_minutes < horizon
            ]
        key = self.scheduler.next_key(runnable)
        if key is None:
            return bool(self._pending) and self._admissible()
        shard = self.shards[key]
        self.scheduler.record(key)
        callback = None
        if on_window is not None:
            callback = lambda stats: on_window(key, stats)  # noqa: E731
        more = shard.step(callback)
        if shard.state == FAILED:
            self._publish("contained_crash", shard, error=shard.error)
            if self.auto_resume and shard.resumes < self.max_resumes:
                self.resume(key)
            else:
                self._retire(shard)
        elif not more and shard.state == DONE:
            shard.finalize()
            self._retire(shard)
            self._publish("done", shard, stop_reason=shard.report().stop_reason)
        return True

    def _admissible(self) -> bool:
        return self.scheduler.can_admit(self._active_count())

    # -- event application ----------------------------------------------

    def _lagging(self, shard: AttackShard, minute: float) -> bool:
        """True while ``shard`` has not yet reached ``minute``.

        A pending shard's clock has not started, so it lags any positive
        minute until admission lets it run.
        """
        if shard.state == PENDING:
            return minute > 0.0
        return shard.runnable and shard.clock_minutes < minute

    def _behind(self, event: FleetEvent) -> List[ShardKey]:
        """Shards that must advance before ``event`` applies.

        A control event is a barrier on the *targeted* shard's simulated
        clock; a launch is a barrier on overall fleet progress (every
        live shard reaches the launch minute first).  Finished shards
        never hold an event back.
        """
        if event.action == LAUNCH:
            return [
                key
                for key, shard in self.shards.items()
                if self._lagging(shard, event.minute)
            ]
        shard = self.shards.get(event.key)
        if shard is not None and self._lagging(shard, event.minute):
            return [event.key]
        return []

    def _apply(self, event: FleetEvent) -> None:
        """Apply one stream event (missed targets are recorded, not
        fatal — an operator action on a finished shard is a no-op)."""
        try:
            if event.action == LAUNCH:
                self.spawn(event.attack)
            elif event.action == CRASH:
                self.crash(event.key)
            elif event.action == DRAIN:
                self.drain(event.key)
            elif event.action == EVICT:
                self.evict(event.key)
            elif event.action == CHECKPOINT:
                self._shard(event.key).force_checkpoint()
        except FleetError:
            self.missed_events.append(event)
            return
        self.events_applied += 1

    # -- drivers ---------------------------------------------------------

    def run(self, on_window: Optional[WindowCallback] = None) -> FleetReport:
        """Serial driver: consume the stream, drain every shard."""
        self.run_until(None, on_window)
        return self.report()

    def run_until(
        self,
        minute: Optional[float] = None,
        on_window: Optional[WindowCallback] = None,
    ) -> None:
        """Serial driver, bounded: apply stream events up to ``minute``
        (inclusive) and advance every shard to that simulated horizon.

        ``None`` consumes the whole stream and drains every shard — so
        :meth:`run` is exactly ``run_until(None)`` plus the report.  The
        event cursor persists across calls: the soak harness drives one
        campaign as a sequence of epochs, tearing the runtime down and
        rebuilding it (``skip_events`` + :meth:`adopt`) between some of
        them.
        """
        while self._cursor < len(self.events):
            event = self.events[self._cursor]
            if minute is not None and event.minute > minute:
                break
            if event.minute < self._last_event_minute:
                raise FleetError(
                    "fleet stream is not sorted by minute "
                    f"({event.minute} after {self._last_event_minute}); "
                    "merge it first"
                )
            self._last_event_minute = event.minute
            while self._behind(event) and self._step_once(
                on_window, horizon=minute
            ):
                pass
            self._apply(event)
            self._cursor += 1
        while self._step_once(on_window, horizon=minute):
            pass

    async def run_async(
        self, on_window: Optional[WindowCallback] = None
    ) -> FleetReport:
        """Asyncio driver: a pump task feeds the merged stream through a
        bounded queue (backpressure: the pump blocks while the
        dispatcher is behind) and the dispatcher interleaves shard work
        between events, yielding to the loop after every unit.

        Applies the identical event/step sequence as :meth:`run`, so the
        resulting report — digests included — is byte-identical.
        """
        queue: "asyncio.Queue" = asyncio.Queue(self.spec.frontend_queue)
        remaining = self.events[self._cursor :]

        async def pump() -> None:
            for event in iter_stream(remaining):
                await queue.put(event)
            await queue.put(None)

        pump_task = asyncio.ensure_future(pump())
        try:
            while True:
                event = await queue.get()
                if event is None:
                    break
                while self._behind(event) and self._step_once(on_window):
                    await asyncio.sleep(0)
                self._apply(event)
                self._cursor += 1
            while self._step_once(on_window):
                await asyncio.sleep(0)
        finally:
            await pump_task
        return self.report()

    # -- reporting / teardown -------------------------------------------

    def report(self) -> FleetReport:
        """Current (final, after a driver returns) fleet accounting."""
        reports = [
            self.shards[key].report() for key in sorted(self.shards)
        ]
        return FleetReport(
            shards=reports,
            scheduler=self.scheduler.snapshot(),
            events_applied=self.events_applied,
            events_missed=len(self.missed_events),
            crashes=sum(report.crashes for report in reports),
            resumes=sum(report.resumes for report in reports),
            migrations=sum(report.migrations for report in reports),
        )

    def tenants_summary(self) -> Dict[str, object]:
        """JSON-safe per-tenant rollup (the ``/tenants`` endpoint body)."""
        tenants: Dict[str, Dict[str, object]] = {}
        for key in sorted(self.shards):
            shard = self.shards[key]
            report = shard.report()
            entry = tenants.setdefault(
                shard.tenant,
                {
                    "weight": self.scheduler.weight(shard.tenant),
                    "debt": round(self.scheduler.tenant_debt(shard.tenant), 6),
                    "windows": 0,
                    "crashes": 0,
                    "resumes": 0,
                    "states": {},
                    "slo": None,
                    "attacks": [],
                },
            )
            entry["windows"] = int(entry["windows"]) + report.windows
            entry["crashes"] = int(entry["crashes"]) + report.crashes
            entry["resumes"] = int(entry["resumes"]) + report.resumes
            states = entry["states"]
            states[shard.state] = states.get(shard.state, 0) + 1
            entry["attacks"].append(report.as_dict())
        for tenant, watchdog in self.watchdogs.items():
            if tenant in tenants:
                tenants[tenant]["slo"] = watchdog.status()
        return {
            "tenants": tenants,
            "scheduler": self.scheduler.snapshot(),
            "pending": [list(key) for key in self._pending],
            "events_applied": self.events_applied,
            "events_missed": len(self.missed_events),
        }

    def close(self) -> None:
        """Tear down every shard and tenant engine (idempotent)."""
        if self._closed:
            return
        self._closed = True
        if self.obs.bus is not None:
            # A long-lived bus outlives this runtime (soak restarts
            # rebuild the fleet); a stale listener would double-count
            # SLO breaches into retired watchdogs.
            self.obs.bus.detach(self._route_to_watchdog)
        for flight in self.flights.values():
            flight.detach()
        for shard in self.shards.values():
            shard.finalize()
        for engine in self._engines.values():
            engine.close()
        self._engines.clear()
        self._testbeds.clear()

    def __enter__(self) -> "FleetRuntime":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
