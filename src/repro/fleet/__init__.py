"""Multi-tenant, multi-attack live traceback runtime (fleet mode).

A transit provider defending many customer origin networks runs the
paper's BGP-steered traceback for *all* of them at once.  This package
multiplexes N concurrent attack replays across M tenants in one
process: frozen campaign specs with derived per-shard seeds
(:mod:`~repro.fleet.spec`), a merged timestamped event stream
(:mod:`~repro.fleet.stream`), deterministic weighted fair-share dispatch
(:mod:`~repro.fleet.scheduler`), per-attack shards with crash
containment and checkpoint resume (:mod:`~repro.fleet.shard`),
tenant-tagged observability views (:mod:`~repro.fleet.obs`), and the
serial/asyncio drivers tying them together
(:mod:`~repro.fleet.runtime`).
"""

from .obs import TaggedBus, TaggedLogbook, TaggedRegistry, shard_observability
from .scheduler import FleetScheduler
from .shard import (
    ACTIVE,
    DONE,
    DRAINING,
    EVICTED,
    FAILED,
    PENDING,
    AttackShard,
    ShardReport,
    attribution_digest,
    checkpoint_digest,
)
from .spec import (
    AttackSpec,
    FleetSpec,
    ShardKey,
    derive_seed,
    derive_tenant_seed,
)
from .stream import (
    ACTIONS,
    CHECKPOINT,
    CRASH,
    DRAIN,
    EVICT,
    LAUNCH,
    FleetEvent,
    iter_stream,
    launch_event,
    merge_streams,
    scripted_stream,
)
from .runtime import (
    FleetReport,
    FleetRuntime,
    fleet_digest,
)

__all__ = [
    "ACTIONS",
    "ACTIVE",
    "AttackShard",
    "AttackSpec",
    "CHECKPOINT",
    "CRASH",
    "DONE",
    "DRAIN",
    "DRAINING",
    "EVICT",
    "EVICTED",
    "FAILED",
    "FleetEvent",
    "FleetReport",
    "FleetRuntime",
    "FleetScheduler",
    "FleetSpec",
    "LAUNCH",
    "PENDING",
    "ShardKey",
    "ShardReport",
    "TaggedBus",
    "TaggedLogbook",
    "TaggedRegistry",
    "attribution_digest",
    "checkpoint_digest",
    "derive_seed",
    "derive_tenant_seed",
    "fleet_digest",
    "iter_stream",
    "launch_event",
    "merge_streams",
    "scripted_stream",
    "shard_observability",
]
