"""One attack shard: a live traceback service plus fleet lifecycle.

An :class:`AttackShard` wraps one
:class:`~repro.live.service.LiveTracebackService` with everything the
fleet needs around it: a lifecycle state machine
(``pending → active → done`` with ``draining``/``failed``/``evicted``
excursions), a checkpoint path namespaced by the shard key so many
shards persist under one directory, crash containment (an exception
escaping the service marks the shard failed instead of taking the fleet
down — the :mod:`repro.faults` posture applied at shard granularity),
and deterministic resume: a failed shard restores from its last intact
checkpoint (rollback to rotated generations included) or, with no
checkpoint yet, restarts from scratch — either way replaying to the
byte-identical final attribution, because scenarios are stateless-seeded.

The shard does not schedule itself and does not own shared resources:
the runtime decides when :meth:`step` runs (fair share) and supplies the
tenant's shared testbed and engine at activation.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional

from ..errors import FleetError
from ..live.checkpoint import load_checkpoint, shard_checkpoint_path
from ..live.service import LiveReport, LiveTracebackService, WindowStats
from ..obs import Observability
from .spec import AttackSpec, ShardKey

#: Lifecycle states.
PENDING = "pending"      # spawned, waiting for admission
ACTIVE = "active"        # holds a live service; schedulable
DRAINING = "draining"    # operator asked it to finish; schedulable
DONE = "done"            # replay reached a stop condition
FAILED = "failed"        # crashed; waiting for resume (or gave up)
EVICTED = "evicted"      # removed by the operator; terminal

#: States in which the scheduler may hand the shard work.
RUNNABLE_STATES = (ACTIVE, DRAINING)

#: States that count against the ``max_active`` admission bound.
LIVE_STATES = (ACTIVE, DRAINING, FAILED)

#: Terminal states.
FINISHED_STATES = (DONE, EVICTED)


def attribution_digest(report: Optional[LiveReport]) -> str:
    """SHA-256 over the canonical final attribution of one shard.

    Covers cluster memberships, estimated volumes (rounded to 1e-9, the
    live-vs-batch equivalence tolerance), the NNLS residual, and the
    stop reason — the byte-determinism witness the fleet suite compares
    across interleavings and kill/resume.
    """
    if report is None:
        return ""
    localization = report.localization
    ranked = (
        [
            {
                "members": sorted(cluster.members),
                "volume": round(cluster.estimated_volume, 9),
            }
            for cluster in localization.ranked
        ]
        if localization is not None
        else []
    )
    canonical = json.dumps(
        {
            "ranked": ranked,
            "residual": round(localization.residual, 9)
            if localization is not None
            else None,
            "stop_reason": report.run_stats.stop_reason,
            "windows": report.run_stats.windows,
        },
        sort_keys=True,
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def checkpoint_digest(path: str) -> str:
    """SHA-256 of the shard's on-disk checkpoint ("" when absent)."""
    if not path or not os.path.exists(path):
        return ""
    with open(path, "rb") as handle:
        return hashlib.sha256(handle.read()).hexdigest()


@dataclass
class ShardReport:
    """Final (or current) accounting for one shard."""

    tenant: str
    prefix: str
    state: str
    windows: int = 0
    configs_consumed: int = 0
    clock_minutes: float = 0.0
    stop_reason: str = ""
    entropy_bits: float = 0.0
    offered_volume: float = 0.0
    dropped_volume: float = 0.0
    crashes: int = 0
    resumes: int = 0
    migrations: int = 0
    error: str = ""
    top_cluster: List[int] = field(default_factory=list)
    top_volume: float = 0.0
    num_clusters: int = 0
    attribution_digest: str = ""
    checkpoint_digest: str = ""
    checkpoint_path: str = ""

    @property
    def key(self) -> ShardKey:
        return (self.tenant, self.prefix)

    @property
    def label(self) -> str:
        return f"{self.tenant}/{self.prefix}"

    def as_dict(self) -> Dict:
        """JSON-safe rendering (feeds ``/tenants`` and the CLI table)."""
        return {
            "tenant": self.tenant,
            "prefix": self.prefix,
            "state": self.state,
            "windows": self.windows,
            "configs_consumed": self.configs_consumed,
            "clock_minutes": round(self.clock_minutes, 6),
            "stop_reason": self.stop_reason,
            "entropy_bits": round(self.entropy_bits, 9),
            "offered_volume": round(self.offered_volume, 9),
            "dropped_volume": round(self.dropped_volume, 9),
            "crashes": self.crashes,
            "resumes": self.resumes,
            "migrations": self.migrations,
            "error": self.error,
            "top_cluster": list(self.top_cluster),
            "top_volume": round(self.top_volume, 9),
            "num_clusters": self.num_clusters,
            "attribution_digest": self.attribution_digest,
            "checkpoint_digest": self.checkpoint_digest,
        }


class AttackShard:
    """Fleet lifecycle around one live traceback service.

    Args:
        attack: the attack this shard tracks.
        checkpoint_dir: directory shared by the whole fleet; this
            shard's checkpoints land at
            :func:`~repro.live.checkpoint.shard_checkpoint_path` under
            it.  Empty disables checkpointing (crash recovery then
            restarts from scratch).
        checkpoint_every: periodic checkpoint cadence in windows.
        checkpoint_keep: rotated-generation retention for this shard's
            checkpoints (runtime configuration; never serialized).
        obs: the shard's (tagged) observability bundle.
        injector: optional per-shard fault injector.
        flight: optional :class:`~repro.obs.flight.FlightRecorder` (the
            shard's black box); dumps on contained crashes (reason
            ``crash``), scripted kills (``kill``), and checkpoint
            rollback on resume (``rollback``).
    """

    def __init__(
        self,
        attack: AttackSpec,
        checkpoint_dir: str = "",
        checkpoint_every: int = 0,
        checkpoint_keep: int = 1,
        obs: Optional[Observability] = None,
        injector=None,
        flight=None,
    ) -> None:
        self.attack = attack
        self.obs = obs if obs is not None else Observability()
        self.injector = injector
        self.flight = flight
        self.checkpoint_keep = checkpoint_keep
        self.state = PENDING
        self.checkpoint_path = (
            shard_checkpoint_path(checkpoint_dir, attack.tenant, attack.prefix)
            if checkpoint_dir
            else ""
        )
        scenario = attack.scenario
        if self.checkpoint_path and checkpoint_every > 0:
            scenario = replace(
                scenario,
                checkpoint_every=checkpoint_every,
                checkpoint_path=self.checkpoint_path,
            )
        self.scenario = scenario
        self.service: Optional[LiveTracebackService] = None
        self.crashes = 0
        self.resumes = 0
        self.migrations = 0
        self.error = ""
        self._final: Optional[LiveReport] = None
        self._last_clock = 0.0

    # -- identity -------------------------------------------------------

    @property
    def key(self) -> ShardKey:
        return self.attack.key

    @property
    def label(self) -> str:
        return self.attack.label

    @property
    def tenant(self) -> str:
        return self.attack.tenant

    @property
    def runnable(self) -> bool:
        return self.state in RUNNABLE_STATES

    @property
    def finished(self) -> bool:
        return self.state in FINISHED_STATES

    @property
    def live(self) -> bool:
        """Counts against the admission bound."""
        return self.state in LIVE_STATES

    @property
    def clock_minutes(self) -> float:
        if self.service is not None:
            self._last_clock = self.service.clock.now
        return self._last_clock

    # -- lifecycle ------------------------------------------------------

    def activate(self, testbed, engine, workers: int = 1) -> None:
        """Build the live service (runs the shard's premeasure)."""
        if self.state != PENDING:
            raise FleetError(f"cannot activate shard {self.label} ({self.state})")
        self.service = LiveTracebackService(
            scenario=self.scenario,
            spec=self.attack.testbed,
            testbed=testbed,
            workers=workers,
            injector=self.injector,
            obs=self.obs,
            engine=engine,
        )
        self.service.checkpoint_keep = self.checkpoint_keep
        self.state = ACTIVE

    def step(
        self, on_window: Optional[Callable[[WindowStats], None]] = None
    ) -> bool:
        """One unit of work, crash-contained; True while more remains."""
        if self.service is None or not self.runnable:
            raise FleetError(f"shard {self.label} is not runnable ({self.state})")
        try:
            more = self.service.step(on_window)
            self._last_clock = self.service.clock.now
        except Exception as exc:  # noqa: BLE001 — containment boundary
            self.error = f"{type(exc).__name__}: {exc}"
            self.crashes += 1
            self.state = FAILED
            self.service = None
            self.dump_flight("crash", error=self.error)
            self._log(
                "warning",
                f"shard {self.label} crashed (contained): {self.error}",
                event="shard_crash",
                error=self.error,
            )
            return False
        if not more:
            self._final = self.service.report()
            self.state = DONE
        return more

    def crash(self) -> None:
        """Simulate a hard kill: the service's in-memory state is lost.

        The shard keeps only what a real restart would have — its spec
        and whatever checkpoints reached disk.
        """
        if self.service is None:
            raise FleetError(f"cannot crash shard {self.label} ({self.state})")
        self._last_clock = self.service.clock.now
        if self.service._owns_engine:
            self.service.engine.close()  # the dying process takes its pool
        self.service = None
        self.error = "killed by fleet event"
        self.crashes += 1
        self.state = FAILED
        self.dump_flight("kill")
        self._log(
            "warning",
            f"shard {self.label} killed at minute {self._last_clock:g}",
            event="shard_kill",
        )

    def mark_restart(self) -> None:
        """Flag a freshly spawned shard as recovering from a process
        restart (the soak harness's adopt path): the shard moves to
        ``failed`` so :meth:`resume` applies, without counting a crash —
        the process died, not the shard."""
        if self.state != PENDING:
            raise FleetError(
                f"cannot mark shard {self.label} restarting ({self.state})"
            )
        self.error = "process restart"
        self.state = FAILED

    def resume(self, testbed, engine, workers: int = 1) -> bool:
        """Recover a failed shard; returns True when it resumed from a
        checkpoint (False = restarted from scratch)."""
        if self.state != FAILED:
            raise FleetError(f"cannot resume shard {self.label} ({self.state})")
        if self.checkpoint_path and os.path.exists(self.checkpoint_path):
            self.service = load_checkpoint(
                self.checkpoint_path,
                workers=workers,
                engine=engine,
                testbed=testbed,
                obs=self.obs,
            )
            self.service.checkpoint_keep = self.checkpoint_keep
            if self.service.checkpoint_migrated_from is not None:
                self.migrations += 1
            self.resumes += 1
            self.state = ACTIVE
            if self.service.restored_via_rollback:
                self.dump_flight(
                    "rollback", clock_minutes=round(self.service.clock.now, 6)
                )
            self._log(
                "info",
                f"shard {self.label} resumed from checkpoint at minute "
                f"{self.service.clock.now:g}",
                event="shard_resume",
                rollback=self.service.restored_via_rollback,
            )
            return True
        self.state = PENDING
        self.activate(testbed, engine, workers=workers)
        self.resumes += 1
        self._log(
            "info",
            f"shard {self.label} restarted from scratch (no checkpoint)",
            event="shard_resume",
            rollback=False,
        )
        return False

    def drain(self) -> None:
        """Finish gracefully: keep the evidence, stop taking work."""
        if self.finished:
            return
        if self.service is None:
            # Never admitted (or crashed): nothing to keep.
            self.evict()
            return
        self.service.finish("drained by fleet operator")
        self.state = DRAINING

    def evict(self) -> None:
        """Remove the shard immediately (terminal)."""
        if self.service is not None:
            self._last_clock = self.service.clock.now
            self._final = self.service.report()
            self.service.close()
            self.service = None
        self.state = EVICTED

    def force_checkpoint(self) -> str:
        """Checkpoint now (fleet ``checkpoint`` event); returns the path."""
        if self.service is None:
            raise FleetError(f"shard {self.label} has no service to checkpoint")
        if not self.checkpoint_path:
            raise FleetError(
                f"shard {self.label} has no checkpoint directory configured"
            )
        return self.service.checkpoint(self.checkpoint_path)

    def finalize(self) -> None:
        """Release resources at end of run (no state change for DONE)."""
        if self.service is not None:
            self._last_clock = self.service.clock.now
            if self._final is None and self.service.finished:
                self._final = self.service.report()
            self.service.close()
            self.service = None

    def _log(self, level: str, message: str, *, event: str, **fields) -> None:
        """Lifecycle logging through the shard's (tagged) logbook.

        In fleet mode the logbook view injects ``tenant``/``attack``
        fields (see :class:`~repro.fleet.obs.TaggedLogbook`), so
        ``--log-json`` streams are filterable by shard; unarmed runs
        (``logbook is None``) pay nothing.
        """
        if self.obs.logbook is not None:
            self.obs.logbook.log(level, message, event=event, **fields)

    def dump_flight(self, reason: str, **extra) -> str:
        """Dump this shard's black box (no-op without a recorder).

        The context carries only simulated/logical state — lifecycle
        state, simulated clock, crash/resume counts — so two replays
        that die at the same logical point dump identical bundles.
        """
        if self.flight is None:
            return ""
        context = {
            "state": self.state,
            "clock_minutes": round(self._last_clock, 6),
            "crashes": self.crashes,
            "resumes": self.resumes,
        }
        context.update(extra)
        return self.flight.dump(reason, context=context)

    # -- reporting ------------------------------------------------------

    def report(self) -> ShardReport:
        """Current accounting snapshot (final once the shard finished)."""
        out = ShardReport(
            tenant=self.attack.tenant,
            prefix=self.attack.prefix,
            state=self.state,
            crashes=self.crashes,
            resumes=self.resumes,
            migrations=self.migrations,
            error=self.error,
            checkpoint_path=self.checkpoint_path,
            checkpoint_digest=checkpoint_digest(self.checkpoint_path),
        )
        live = self._final
        if live is None and self.service is not None:
            stats = self.service.run_stats()
            out.windows = stats.windows
            out.configs_consumed = stats.configs_consumed
            out.clock_minutes = self.clock_minutes
            out.entropy_bits = stats.final_entropy
            out.offered_volume = stats.offered_volume
            out.dropped_volume = stats.dropped_volume
            out.num_clusters = len(self.service.attributor.clusters())
            return out
        if live is not None:
            stats = live.run_stats
            out.windows = stats.windows
            out.configs_consumed = stats.configs_consumed
            out.stop_reason = stats.stop_reason
            out.entropy_bits = stats.final_entropy
            out.offered_volume = stats.offered_volume
            out.dropped_volume = stats.dropped_volume
            out.num_clusters = len(live.clusters)
            out.attribution_digest = attribution_digest(live)
            if live.localization is not None and live.localization.ranked:
                top = live.localization.ranked[0]
                out.top_cluster = sorted(top.members)
                out.top_volume = top.estimated_volume
            out.clock_minutes = self.clock_minutes
        return out
