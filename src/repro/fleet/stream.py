"""The fleet's merged, timestamped event stream.

The front end of the fleet runtime consumes one ordered stream of
:class:`FleetEvent` s — attack launches and operator/control actions —
merged across tenants.  :func:`merge_streams` does the merging with a
deterministic total order (minute, then shard key, then arrival rank),
so the same spec always yields the same stream; :func:`scripted_stream`
builds the canonical stream for a :class:`~repro.fleet.spec.FleetSpec`:
every attack's launch at its stagger offset, interleaved with any
scripted control events (crash/drain/evict/checkpoint).

Between events the runtime advances shards; an event's ``minute`` is a
barrier on the *simulated* clock of the shard it targets (fleet time is
per-shard simulated time, never wall time), which keeps control actions
— "crash tenant-01's second attack at minute 240" — byte-deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

from ..errors import FleetError
from .spec import AttackSpec, FleetSpec, ShardKey

#: Control actions a :class:`FleetEvent` can carry.
LAUNCH = "launch"
CRASH = "crash"
DRAIN = "drain"
EVICT = "evict"
CHECKPOINT = "checkpoint"

ACTIONS = (LAUNCH, CRASH, DRAIN, EVICT, CHECKPOINT)


@dataclass(frozen=True)
class FleetEvent:
    """One timestamped instruction on the merged fleet stream.

    Attributes:
        minute: simulated-minutes barrier — the targeted shard reaches at
            least this clock value before the event applies (launches
            apply relative to overall fleet progress instead, since the
            shard does not exist yet).
        action: one of :data:`ACTIONS`.
        tenant / prefix: the targeted shard key.
        attack: the full attack description (``launch`` events only).
    """

    minute: float
    action: str
    tenant: str = ""
    prefix: str = ""
    attack: Optional[AttackSpec] = None

    def __post_init__(self) -> None:
        if self.action not in ACTIONS:
            raise FleetError(
                f"unknown fleet action {self.action!r}; expected one of "
                f"{ACTIONS}"
            )
        if self.minute < 0:
            raise FleetError("fleet events cannot predate minute zero")
        if self.action == LAUNCH:
            if self.attack is None:
                raise FleetError("launch events must carry an attack spec")
        elif not self.tenant or not self.prefix:
            raise FleetError(
                f"{self.action} events must name a (tenant, prefix) shard"
            )

    @property
    def key(self) -> ShardKey:
        """The targeted shard key."""
        if self.attack is not None:
            return self.attack.key
        return (self.tenant, self.prefix)


def launch_event(attack: AttackSpec) -> FleetEvent:
    """The launch event for one attack (at its stagger offset)."""
    return FleetEvent(
        minute=attack.launch_minute,
        action=LAUNCH,
        tenant=attack.tenant,
        prefix=attack.prefix,
        attack=attack,
    )


def merge_streams(
    *streams: Iterable[FleetEvent],
) -> List[FleetEvent]:
    """Merge per-tenant (or per-source) event streams into one.

    Total order: ``(minute, tenant, prefix, stream rank, arrival rank)``
    — stable and deterministic regardless of how the input streams were
    produced, so two runs of the same spec ingest identical sequences.
    """
    decorated = []
    for stream_rank, stream in enumerate(streams):
        for arrival_rank, event in enumerate(stream):
            decorated.append(
                (
                    (
                        event.minute,
                        event.key[0],
                        event.key[1],
                        stream_rank,
                        arrival_rank,
                    ),
                    event,
                )
            )
    return [event for _, event in sorted(decorated, key=lambda pair: pair[0])]


def scripted_stream(
    spec: FleetSpec, controls: Sequence[FleetEvent] = ()
) -> List[FleetEvent]:
    """The canonical merged stream for a spec: launches + control events."""
    return merge_streams([launch_event(a) for a in spec.attacks()], controls)


def iter_stream(events: Iterable[FleetEvent]) -> Iterator[FleetEvent]:
    """Validate monotonicity while yielding (guards hand-built streams)."""
    last = 0.0
    for event in events:
        if event.minute < last:
            raise FleetError(
                "fleet stream is not sorted by minute "
                f"({event.minute} after {last}); merge it first"
            )
        last = event.minute
        yield event
