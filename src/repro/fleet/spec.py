"""Fleet specifications: tenants, attacks, and their seeded derivation.

A fleet replay is described the same way a single live replay is — as a
frozen, fully seeded value — so the whole multi-tenant campaign is
deterministic end to end.  :class:`FleetSpec` is the campaign recipe
(how many tenants, how many concurrent attacks each, per-attack replay
shape); :meth:`FleetSpec.attacks` expands it into concrete
:class:`AttackSpec` s with *derived* seeds: each shard's scenario seed is
a stable hash of ``(fleet seed, tenant, prefix)``, so adding a tenant or
an attack never perturbs the traffic of the others.

Tenants model distinct origin networks (the provider serves many victim
networks at once); each tenant gets its own
:class:`~repro.core.pipeline.TestbedSpec` and therefore its own
topology, origin, schedule, and simulation engine.  Attacks within one
tenant share all of that — which is exactly why the fleet runtime shares
one engine per tenant across its shards.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from ..core.pipeline import TestbedSpec
from ..errors import FleetError
from ..live.service import ReplayScenario
from ..spoof.sources import PLACEMENT_DISTRIBUTIONS
from ..topology.generator import TopologyParams

#: A shard's identity within the fleet.
ShardKey = Tuple[str, str]


def derive_seed(fleet_seed: int, tenant: str, prefix: str) -> int:
    """Stable per-shard seed: SHA-256 of the fleet seed and shard key.

    Independent of tenant/attack *counts*, so growing the fleet leaves
    existing shards' traffic byte-identical.
    """
    digest = hashlib.sha256(
        f"{fleet_seed}\x00{tenant}\x00{prefix}".encode("utf-8")
    ).digest()
    return int.from_bytes(digest[:8], "big") % (2**31)


def derive_tenant_seed(fleet_seed: int, tenant: str) -> int:
    """Stable per-tenant testbed seed (one origin network per tenant)."""
    digest = hashlib.sha256(
        f"testbed\x00{fleet_seed}\x00{tenant}".encode("utf-8")
    ).digest()
    return int.from_bytes(digest[:8], "big") % (2**31)


@dataclass(frozen=True)
class AttackSpec:
    """One attack against one tenant: a shard of the fleet.

    Attributes:
        tenant: tenant (origin network) identifier.
        prefix: the attacked prefix — unique per tenant; together with
            the tenant it keys the shard, its checkpoints, and its
            metrics labels.
        scenario: the fully seeded replay the shard drives.
        testbed: the tenant's testbed recipe (shared by sibling shards).
        launch_minute: fleet-stream timestamp at which this attack
            starts (the merged event stream is sorted by it).
    """

    tenant: str
    prefix: str
    scenario: ReplayScenario
    testbed: TestbedSpec
    launch_minute: float = 0.0

    def __post_init__(self) -> None:
        if not self.tenant or not self.prefix:
            raise FleetError("attacks need a tenant and a prefix")
        if self.launch_minute < 0:
            raise FleetError("launch_minute cannot be negative")

    @property
    def key(self) -> ShardKey:
        """The shard key ``(tenant, prefix)``."""
        return (self.tenant, self.prefix)

    @property
    def label(self) -> str:
        """Human-readable shard name (metrics ``attack`` label value)."""
        return f"{self.tenant}/{self.prefix}"


@dataclass(frozen=True)
class FleetSpec:
    """Frozen recipe for a whole multi-tenant, multi-attack campaign.

    Attributes:
        seed: fleet seed; every shard seed derives from it.
        tenants: number of tenant origin networks.
        attacks_per_tenant: concurrent attacks each tenant suffers.
        max_configs: per-shard announcement schedule truncation.
        num_sources: spoofing sources per attack.
        distribution: source placement distribution per attack.
        window_minutes: per-shard observation window length.
        batches_per_window / queue_capacity / nnls_stride: forwarded to
            each shard's :class:`~repro.live.service.ReplayScenario`.
        launch_stagger_minutes: attack launches are spread this many
            simulated minutes apart in the merged event stream (0 = all
            at once).
        checkpoint_every: per-shard periodic checkpoint cadence, in
            windows (0 = never; requires a checkpoint directory at run
            time — the runtime namespaces paths per shard).
        checkpoint_keep: rotated checkpoint generations retained per
            shard (``<path>.1..K``; the soak harness raises this so a
            corrupted primary still has intact history to roll back to).
        topology_params: per-tenant topology shape (seed is overridden
            per tenant); None = the generator's default.
        num_links / num_vantages / num_probes: per-tenant testbed
            sizing, forwarded to each tenant's
            :class:`~repro.core.pipeline.TestbedSpec` (size them down
            together with a small ``topology_params``).
        quotas: per-tenant fair-share weights for the scheduler
            (missing tenants default to weight 1.0).
        max_active: admission bound — at most this many shards hold live
            services at once (0 = unbounded).  Pending launches queue in
            fair-share order, which is the fleet's backpressure onto the
            ingest stream.
        frontend_queue: bounded capacity of the asyncio front end's
            event queue.
    """

    seed: int = 0
    tenants: int = 2
    attacks_per_tenant: int = 2
    max_configs: int = 6
    num_sources: int = 12
    distribution: str = "pareto"
    window_minutes: float = 20.0
    batches_per_window: int = 1
    queue_capacity: int = 64
    nnls_stride: int = 1
    launch_stagger_minutes: float = 0.0
    checkpoint_every: int = 0
    checkpoint_keep: int = 1
    topology_params: Optional[TopologyParams] = None
    num_links: int = 7
    num_vantages: int = 25
    num_probes: int = 120
    quotas: Tuple[Tuple[str, float], ...] = ()
    max_active: int = 0
    frontend_queue: int = 16

    def __post_init__(self) -> None:
        if self.tenants < 1:
            raise FleetError("need at least one tenant")
        if self.attacks_per_tenant < 1:
            raise FleetError("need at least one attack per tenant")
        if self.distribution not in PLACEMENT_DISTRIBUTIONS:
            raise FleetError(
                f"unknown distribution {self.distribution!r}; expected one "
                f"of {sorted(PLACEMENT_DISTRIBUTIONS)}"
            )
        if self.max_active < 0:
            raise FleetError("max_active cannot be negative")
        if self.checkpoint_keep < 1:
            raise FleetError("checkpoint_keep must retain at least one copy")
        if self.frontend_queue < 1:
            raise FleetError("the front-end queue needs capacity >= 1")
        if self.launch_stagger_minutes < 0:
            raise FleetError("launch stagger cannot be negative")
        for tenant, weight in self.quotas:
            if weight <= 0:
                raise FleetError(f"tenant {tenant!r} quota must be positive")

    # -- derivation -----------------------------------------------------

    def tenant_names(self) -> List[str]:
        """Deterministic tenant identifiers (``tenant-00`` …)."""
        return [f"tenant-{index:02d}" for index in range(self.tenants)]

    def tenant_testbed(self, tenant: str) -> TestbedSpec:
        """The tenant's testbed recipe (its own origin network)."""
        seed = derive_tenant_seed(self.seed, tenant)
        params = self.topology_params
        if params is not None:
            params = replace(params, seed=seed)
        return TestbedSpec(
            seed=seed,
            topology_params=params,
            num_links=self.num_links,
            num_vantages=self.num_vantages,
            num_probes=self.num_probes,
        )

    def quota_weights(self) -> Dict[str, float]:
        """Per-tenant scheduler weights (1.0 where unspecified)."""
        weights = {tenant: 1.0 for tenant in self.tenant_names()}
        weights.update(dict(self.quotas))
        return weights

    def scenario_for(
        self, tenant: str, prefix: str, checkpoint_path: str = ""
    ) -> ReplayScenario:
        """The shard's fully seeded replay scenario."""
        return ReplayScenario(
            seed=derive_seed(self.seed, tenant, prefix),
            distribution=self.distribution,
            num_sources=self.num_sources,
            max_configs=self.max_configs,
            window_minutes=self.window_minutes,
            batches_per_window=self.batches_per_window,
            queue_capacity=self.queue_capacity,
            nnls_stride=self.nnls_stride,
            checkpoint_every=self.checkpoint_every if checkpoint_path else 0,
            checkpoint_path=checkpoint_path,
        )

    def attacks(self) -> List[AttackSpec]:
        """Expand into concrete attacks, sorted by launch time then key.

        Launches interleave across tenants (tenant 0 attack 0, tenant 1
        attack 0, …) so a stagger exercises cross-tenant concurrency
        rather than running tenants back to back.
        """
        testbeds = {
            tenant: self.tenant_testbed(tenant)
            for tenant in self.tenant_names()
        }
        attacks: List[AttackSpec] = []
        ordinal = 0
        for attack_index in range(self.attacks_per_tenant):
            for tenant_index, tenant in enumerate(self.tenant_names()):
                prefix = f"198.18.{tenant_index}.{attack_index * 8}/29"
                attacks.append(
                    AttackSpec(
                        tenant=tenant,
                        prefix=prefix,
                        scenario=self.scenario_for(tenant, prefix),
                        testbed=testbeds[tenant],
                        launch_minute=ordinal * self.launch_stagger_minutes,
                    )
                )
                ordinal += 1
        return attacks
