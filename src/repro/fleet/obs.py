"""Tenant-labelled observability views for fleet shards.

The fleet shares one :class:`~repro.obs.metrics.MetricsRegistry` and one
:class:`~repro.obs.bus.EventBus` across every shard — a single scrape
and a single SSE stream cover the whole runtime — but each data point
must say *whose* it is.  Rather than threading ``tenant=``/``attack=``
arguments through every call site in :mod:`repro.live`, each shard gets
a **tagged view** of the parent surface:

* :class:`TaggedRegistry` forwards ``counter``/``gauge``/``histogram``
  to the parent registry with the shard's labels merged in, so the
  untouched live-service instrumentation
  (``repro_live_window_seconds`` …) lands as
  ``repro_live_window_seconds{attack="…",tenant="…"}``.  Per-tenant SLO
  watchdogs built on a tagged view likewise emit
  ``repro_slo_breached_total{slo="…",tenant="…"}``.
* :class:`TaggedBus` forwards ``publish`` with the labels injected into
  the payload, so every ``window``/``churn``/``checkpoint`` event on the
  shared stream carries its tenant — which is what ``spooftrack dash
  --tenant`` filters on and what routes events to the right per-tenant
  watchdog.
* :class:`TaggedLogbook` forwards log records with the labels injected
  into the structured fields, so fleet-mode ``--log-json`` lines are
  filterable by tenant/attack while human-mode rendering stays byte
  for byte what a single-tenant run prints.

Views are cheap proxies; the parent objects own all state, locking, and
lifecycle (a shard never closes the shared bus).
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

from ..obs import Observability


def _clean_labels(labels: Mapping[str, object]) -> Dict[str, str]:
    return {str(key): str(value) for key, value in labels.items()}


class TaggedRegistry:
    """Registry proxy that stamps fixed labels onto every series."""

    def __init__(self, registry, **labels) -> None:
        self._registry = registry
        self.labels = _clean_labels(labels)

    def _merge(self, labels: Optional[Mapping[str, str]]) -> Dict[str, str]:
        merged = dict(self.labels)
        if labels:
            merged.update(_clean_labels(labels))
        return merged

    def counter(self, name, help="", labels=None):
        return self._registry.counter(name, help=help, labels=self._merge(labels))

    def gauge(self, name, help="", labels=None):
        return self._registry.gauge(name, help=help, labels=self._merge(labels))

    def histogram(self, name, help="", labels=None, **kwargs):
        return self._registry.histogram(
            name, help=help, labels=self._merge(labels), **kwargs
        )


class TaggedBus:
    """Bus proxy that injects fixed fields into every published event.

    Only the publish side is proxied (that is all a shard does); payload
    fields win over tags on collision so a publisher can override its
    own labelling explicitly.
    """

    def __init__(self, bus, **tags) -> None:
        self._bus = bus
        self.tags = _clean_labels(tags)

    def publish(self, kind: str, **payload):
        merged = dict(self.tags)
        merged.update(payload)
        return self._bus.publish(kind, **merged)


class TaggedLogbook:
    """Logbook proxy that stamps fixed fields onto every record.

    Human-mode rendering is untouched — the message still prints bare,
    byte for byte — because the tags ride only the *structured* side:
    ``--log-json`` lines, the retained ``records``, and any listeners
    (the flight recorder) see ``tenant=``/``attack=`` fields and can
    filter the fleet's merged log stream by shard.  Explicit fields win
    over tags on collision, mirroring :class:`TaggedBus`.
    """

    def __init__(self, logbook, **tags) -> None:
        self._logbook = logbook
        self.tags = _clean_labels(tags)

    def log(self, level: str, message: str, *, event: str = "", **fields):
        merged: Dict[str, object] = dict(self.tags)
        merged.update(fields)
        return self._logbook.log(level, message, event=event, **merged)

    def debug(self, message: str, *, event: str = "", **fields) -> None:
        self.log("debug", message, event=event, **fields)

    def info(self, message: str, *, event: str = "", **fields) -> None:
        self.log("info", message, event=event, **fields)

    def warning(self, message: str, *, event: str = "", **fields) -> None:
        self.log("warning", message, event=event, **fields)

    def error(self, message: str, *, event: str = "", **fields) -> None:
        self.log("error", message, event=event, **fields)

    # Shared state (records, listeners, rendering mode) stays on the
    # parent — a tagged view is not a second sink.

    @property
    def records(self):
        return self._logbook.records

    @property
    def listeners(self):
        return self._logbook.listeners

    @property
    def json_mode(self) -> bool:
        return self._logbook.json_mode

    @property
    def level(self) -> str:
        return self._logbook.level


def shard_observability(
    parent: Optional[Observability], tenant: str, attack: str
) -> Observability:
    """The tagged :class:`Observability` bundle one shard runs under.

    Tracer/profiler/timer stay off: spans and phase timers are per-run
    singletons whose identities would collide across shards, while
    metrics, bus events, and log records carry their shard in their
    labels.  With no parent (or a bare parent) the view is bare too —
    the live service's ``registry is None`` guards keep the hot path
    free.
    """
    if parent is None:
        return Observability()
    registry = (
        TaggedRegistry(parent.registry, tenant=tenant, attack=attack)
        if parent.registry is not None
        else None
    )
    bus = (
        TaggedBus(parent.bus, tenant=tenant, attack=attack)
        if parent.bus is not None
        else None
    )
    logbook = (
        TaggedLogbook(parent.logbook, tenant=tenant, attack=attack)
        if parent.logbook is not None
        else None
    )
    return Observability(registry=registry, bus=bus, logbook=logbook)
