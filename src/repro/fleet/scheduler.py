"""Fair-share dispatch of shard work across tenants.

One engine pool per tenant serves every attack on that tenant, and one
process serves every tenant — so *which shard gets the next unit of
announcement-measurement work* is a policy decision, not an accident of
iteration order.  :class:`FleetScheduler` makes it explicit and
deterministic:

* **Weighted fair share across tenants** — each tenant accumulates
  normalized dispatch debt (``dispatches / weight``); the next unit goes
  to the runnable tenant with the least debt, so a tenant with quota
  weight 2.0 receives twice the work rate of a weight-1.0 tenant, and a
  tenant with many shards cannot crowd out a tenant with one.
* **Round-robin within a tenant** — among a tenant's runnable shards the
  least-recently-dispatched one goes first, which bounds the gap between
  two dispatches of any runnable shard (no shard starvation: with ``n``
  runnable shards and weight floor ``w``, the gap is at most
  ``n * max_weight / w`` dispatches).
* **Fair admission** — the same ordering decides which *pending* shard
  is admitted when an active slot frees up under ``max_active``, so
  admission backpressure cannot starve a tenant either.

All tie-breaks resolve by sorted key, so the dispatch sequence is a pure
function of the registration/record history.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..errors import FleetError
from .spec import ShardKey


class FleetScheduler:
    """Deterministic weighted fair-share scheduler over shard keys.

    Args:
        quotas: per-tenant weights (default 1.0; higher = more work
            share).  Unknown tenants registered later default to 1.0.
        max_active: admission bound on concurrently active shards
            (0 = unbounded).
    """

    def __init__(
        self,
        quotas: Optional[Mapping[str, float]] = None,
        max_active: int = 0,
    ) -> None:
        if max_active < 0:
            raise FleetError("max_active cannot be negative")
        self.max_active = max_active
        self._weights: Dict[str, float] = {}
        for tenant, weight in (quotas or {}).items():
            if weight <= 0:
                raise FleetError(f"tenant {tenant!r} weight must be positive")
            self._weights[tenant] = float(weight)
        self._tenants: Dict[ShardKey, str] = {}
        self._debt: Dict[str, float] = {}
        self._last_dispatch: Dict[ShardKey, int] = {}
        self.dispatches = 0

    # -- membership -----------------------------------------------------

    def register(self, key: ShardKey, tenant: str) -> None:
        """Make a shard schedulable (idempotent)."""
        self._tenants[key] = tenant
        self._weights.setdefault(tenant, 1.0)
        self._debt.setdefault(tenant, 0.0)
        self._last_dispatch.setdefault(key, -1)

    def unregister(self, key: ShardKey) -> None:
        """Forget a shard (evicted/done); tenant debt is retained so a
        respawned tenant does not leapfrog the others."""
        self._tenants.pop(key, None)
        self._last_dispatch.pop(key, None)

    def weight(self, tenant: str) -> float:
        return self._weights.get(tenant, 1.0)

    def tenant_debt(self, tenant: str) -> float:
        """Normalized dispatch debt (dispatches / weight)."""
        return self._debt.get(tenant, 0.0)

    # -- selection ------------------------------------------------------

    def _rank(self, key: ShardKey) -> Tuple[float, str, int, ShardKey]:
        tenant = self._tenants.get(key)
        if tenant is None:
            raise FleetError(f"shard {key!r} is not registered")
        return (
            self._debt.get(tenant, 0.0),
            tenant,
            self._last_dispatch.get(key, -1),
            key,
        )

    def next_key(self, runnable: Sequence[ShardKey]) -> Optional[ShardKey]:
        """The shard the next unit of work goes to (None when idle)."""
        candidates = [key for key in runnable if key in self._tenants]
        if not candidates:
            return None
        return min(candidates, key=self._rank)

    def admission_order(self, pending: Sequence[ShardKey]) -> List[ShardKey]:
        """Pending shards in the order they should be admitted."""
        candidates = [key for key in pending if key in self._tenants]
        return sorted(candidates, key=self._rank)

    def can_admit(self, active_count: int) -> bool:
        """True while another shard may hold a live service."""
        return self.max_active == 0 or active_count < self.max_active

    # -- accounting -----------------------------------------------------

    def record(self, key: ShardKey) -> None:
        """Charge one dispatched unit of work to the shard's tenant."""
        tenant = self._tenants.get(key)
        if tenant is None:
            raise FleetError(f"cannot record dispatch for unknown {key!r}")
        self.dispatches += 1
        self._debt[tenant] = self._debt.get(tenant, 0.0) + 1.0 / self.weight(
            tenant
        )
        self._last_dispatch[key] = self.dispatches

    def snapshot(self) -> Dict[str, object]:
        """JSON-safe accounting view (feeds the ``/tenants`` endpoint)."""
        return {
            "dispatches": self.dispatches,
            "max_active": self.max_active,
            "debt": {
                tenant: round(debt, 6)
                for tenant, debt in sorted(self._debt.items())
            },
            "weights": dict(sorted(self._weights.items())),
        }
