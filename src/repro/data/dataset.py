"""Dataset export/import (paper §VI: "our dataset ... publicly available").

The paper releases its measurement dataset so others can study route
diversity, routing policies, and hijack propagation without redeploying
weeks of announcements.  This module provides the equivalent artifact: a
versioned JSON container holding the deployed schedule and the per-
configuration catchment assignments, loadable for offline reanalysis
(clustering, scheduling, localization) without a simulator.

Format (version 1)::

    {
      "format": "repro-spoof-dataset",
      "version": 1,
      "meta": {...},                       # free-form provenance
      "links": ["AMS-IX", ...],
      "configs": [
        {
          "label": "...", "phase": "locations",
          "announced": [...], "prepended": [...],
          "poisoned": {"link": [asn, ...]},
          "no_export": {"link": [asn, ...]},
          "prepend_count": 4,
          "assignment": {"<source asn>": "<link>"}
        }, ...
      ]
    }
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, IO, List, Mapping, Optional, Sequence, Union

from ..bgp.announcement import AnnouncementConfig
from ..errors import DataFormatError
from ..types import ASN, Catchment, LinkId

FORMAT_NAME = "repro-spoof-dataset"
FORMAT_VERSION = 1

PathOrIO = Union[str, Path, IO[str]]


@dataclass
class ConfigRecord:
    """One deployed configuration and its measured source→link assignment."""

    config: AnnouncementConfig
    assignment: Dict[ASN, LinkId]

    def catchments(self, links: Sequence[LinkId]) -> Dict[LinkId, Catchment]:
        """Invert the assignment into per-link catchment sets."""
        catchments: Dict[LinkId, set] = {link: set() for link in links}
        for source, link in self.assignment.items():
            catchments.setdefault(link, set()).add(source)
        return {link: frozenset(members) for link, members in catchments.items()}


@dataclass
class Dataset:
    """A deployable-schedule + catchments dataset.

    Attributes:
        links: the origin's peering link ids.
        records: one record per deployed configuration, in order.
        meta: free-form provenance (seed, topology size, dates, ...).
    """

    links: List[LinkId]
    records: List[ConfigRecord] = field(default_factory=list)
    meta: Dict[str, object] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_history(
        cls,
        links: Sequence[LinkId],
        configs: Sequence[AnnouncementConfig],
        assignments: Sequence[Mapping[ASN, LinkId]],
        meta: Optional[Mapping[str, object]] = None,
    ) -> "Dataset":
        """Build a dataset from parallel config/assignment sequences.

        Raises:
            DataFormatError: when lengths disagree.
        """
        if len(configs) != len(assignments):
            raise DataFormatError(
                f"{len(configs)} configs vs {len(assignments)} assignments"
            )
        records = [
            ConfigRecord(config=config, assignment=dict(assignment))
            for config, assignment in zip(configs, assignments)
        ]
        return cls(links=list(links), records=records, meta=dict(meta or {}))

    @classmethod
    def from_catchment_history(
        cls,
        links: Sequence[LinkId],
        configs: Sequence[AnnouncementConfig],
        catchment_history: Sequence[Mapping[LinkId, Catchment]],
        meta: Optional[Mapping[str, object]] = None,
    ) -> "Dataset":
        """Build from per-link catchment maps instead of assignments."""
        assignments: List[Dict[ASN, LinkId]] = []
        for catchments in catchment_history:
            assignment: Dict[ASN, LinkId] = {}
            for link, members in catchments.items():
                for source in members:
                    assignment[source] = link
            assignments.append(assignment)
        return cls.from_history(links, configs, assignments, meta)

    # ------------------------------------------------------------------
    # Reanalysis accessors
    # ------------------------------------------------------------------

    def catchment_history(self) -> List[Dict[LinkId, Catchment]]:
        """Per-configuration catchment maps (for clustering/scheduling).

        Each map carries exactly the links announced by its configuration
        (withdrawn links have no catchment), matching the shape produced
        by live measurement.
        """
        return [
            record.catchments(sorted(record.config.announced))
            for record in self.records
        ]

    def configs(self) -> List[AnnouncementConfig]:
        """The deployed configurations, in order."""
        return [record.config for record in self.records]

    def sources(self) -> frozenset:
        """All sources ever assigned to a catchment."""
        seen = set()
        for record in self.records:
            seen.update(record.assignment)
        return frozenset(seen)

    def __len__(self) -> int:
        return len(self.records)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------

    def to_json_dict(self) -> Dict[str, object]:
        """The JSON-serializable representation."""
        return {
            "format": FORMAT_NAME,
            "version": FORMAT_VERSION,
            "meta": self.meta,
            "links": list(self.links),
            "configs": [
                {
                    "label": record.config.label,
                    "phase": record.config.phase,
                    "announced": sorted(record.config.announced),
                    "prepended": sorted(record.config.prepended),
                    "poisoned": {
                        link: sorted(ases)
                        for link, ases in sorted(record.config.poisoned.items())
                    },
                    "no_export": {
                        link: sorted(ases)
                        for link, ases in sorted(record.config.no_export.items())
                    },
                    "prepend_count": record.config.prepend_count,
                    "assignment": {
                        str(source): link
                        for source, link in sorted(record.assignment.items())
                    },
                }
                for record in self.records
            ],
        }

    def save(self, destination: PathOrIO) -> None:
        """Write the dataset as JSON."""
        if isinstance(destination, (str, Path)):
            with open(destination, "w", encoding="utf-8") as handle:
                json.dump(self.to_json_dict(), handle, indent=1)
            return
        json.dump(self.to_json_dict(), destination, indent=1)

    @classmethod
    def load(cls, source: PathOrIO) -> "Dataset":
        """Load a dataset written by :meth:`save`.

        Raises:
            DataFormatError: on wrong format marker, unsupported version,
                or malformed records.
        """
        if isinstance(source, (str, Path)):
            with open(source, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        else:
            payload = json.load(source)
        return cls.from_json_dict(payload)

    @classmethod
    def from_json_dict(cls, payload: Mapping[str, object]) -> "Dataset":
        """Reconstruct a dataset from its JSON representation."""
        if payload.get("format") != FORMAT_NAME:
            raise DataFormatError(
                f"not a {FORMAT_NAME} file (format={payload.get('format')!r})"
            )
        if payload.get("version") != FORMAT_VERSION:
            raise DataFormatError(
                f"unsupported dataset version {payload.get('version')!r}"
            )
        links = list(payload.get("links", []))
        records: List[ConfigRecord] = []
        for index, raw in enumerate(payload.get("configs", [])):
            try:
                config = AnnouncementConfig(
                    announced=frozenset(raw["announced"]),
                    prepended=frozenset(raw.get("prepended", [])),
                    poisoned={
                        link: frozenset(ases)
                        for link, ases in raw.get("poisoned", {}).items()
                    },
                    no_export={
                        link: frozenset(ases)
                        for link, ases in raw.get("no_export", {}).items()
                    },
                    prepend_count=raw.get("prepend_count", 4),
                    label=raw.get("label", ""),
                    phase=raw.get("phase", ""),
                )
                assignment = {
                    int(source): link
                    for source, link in raw.get("assignment", {}).items()
                }
            except (KeyError, TypeError, ValueError) as exc:
                raise DataFormatError(f"malformed config record {index}: {exc}") from exc
            records.append(ConfigRecord(config=config, assignment=assignment))
        return cls(links=links, records=records, meta=dict(payload.get("meta", {})))
