"""AS-path dataset: route diversity and link discovery (paper §VI).

Beyond catchments, the paper's published dataset "contains at least four
alternate routes towards PEERING for each observed AS, has thousands of
route changes ... and may discover new links (particularly as a result of
our poisoning experiments)".  This module captures the equivalent:

* :class:`PathDataset` — per configuration, the forwarding AS-path of
  every covered source, saved/loaded as JSON Lines (one record per
  configuration; streams well at Internet scale).
* :meth:`PathDataset.route_diversity` — distinct paths observed per
  source (the ≥ r+1 guarantee of §III-A).
* :meth:`PathDataset.discovered_links` — AS adjacencies that only appear
  under manipulation configurations, i.e. links invisible to a passive
  observer of default routing (topology discovery as a side effect).
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, FrozenSet, IO, Iterable, List, Mapping, Optional, Sequence, Set, Tuple, Union

from ..bgp.simulator import RoutingOutcome
from ..errors import DataFormatError, SimulationError
from ..types import ASN, ASPath

PathOrIO = Union[str, Path, IO[str]]

JSONL_HEADER = {"format": "repro-path-dataset", "version": 1}


@dataclass
class PathRecord:
    """Forwarding paths of one configuration.

    Attributes:
        config_label: the configuration's label.
        phase: its generation phase.
        paths: source AS → forwarding path (source-first, origin-last).
    """

    config_label: str
    phase: str
    paths: Dict[ASN, ASPath] = field(default_factory=dict)

    def links(self) -> Set[Tuple[ASN, ASN]]:
        """Undirected AS adjacencies appearing on this record's paths."""
        seen: Set[Tuple[ASN, ASN]] = set()
        for path in self.paths.values():
            for a, b in zip(path, path[1:]):
                seen.add((a, b) if a < b else (b, a))
        return seen


class PathDataset:
    """An ordered collection of per-configuration forwarding paths."""

    def __init__(self, records: Optional[List[PathRecord]] = None) -> None:
        self.records: List[PathRecord] = records or []

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_outcomes(
        cls, outcomes: Iterable[RoutingOutcome]
    ) -> "PathDataset":
        """Extract every covered source's forwarding path per outcome."""
        records: List[PathRecord] = []
        for outcome in outcomes:
            paths: Dict[ASN, ASPath] = {}
            for asn in outcome.covered_ases:
                try:
                    paths[asn] = outcome.forwarding_path(asn)
                except SimulationError:
                    continue
            records.append(
                PathRecord(
                    config_label=outcome.config.label
                    or outcome.config.describe(),
                    phase=outcome.config.phase,
                    paths=paths,
                )
            )
        return cls(records)

    def add(self, record: PathRecord) -> None:
        """Append one configuration's record."""
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    # ------------------------------------------------------------------
    # Analyses (paper §VI claims)
    # ------------------------------------------------------------------

    def sources(self) -> FrozenSet[ASN]:
        """Every source observed in at least one record."""
        seen: Set[ASN] = set()
        for record in self.records:
            seen.update(record.paths)
        return frozenset(seen)

    def route_diversity(self) -> Dict[ASN, int]:
        """Distinct forwarding paths observed per source."""
        distinct: Dict[ASN, Set[ASPath]] = {}
        for record in self.records:
            for source, path in record.paths.items():
                distinct.setdefault(source, set()).add(path)
        return {source: len(paths) for source, paths in distinct.items()}

    def route_changes(self) -> int:
        """Total consecutive-configuration path changes across sources.

        The paper advertises "thousands of route changes" as a dataset
        feature for path-change research (PoiRoot, LIFEGUARD).
        """
        changes = 0
        previous: Dict[ASN, ASPath] = {}
        for record in self.records:
            for source, path in record.paths.items():
                if source in previous and previous[source] != path:
                    changes += 1
            previous.update(record.paths)
        return changes

    def discovered_links(
        self, baseline_phases: Sequence[str] = ("locations",)
    ) -> Set[Tuple[ASN, ASN]]:
        """Adjacencies visible only outside the baseline phases.

        With ``baseline_phases=("locations",)`` this answers: which links
        did prepending/poisoning expose that plain anycast announcements
        never used?  (The paper: "may discover new links, particularly as
        a result of our poisoning experiments".)
        """
        baseline: Set[Tuple[ASN, ASN]] = set()
        manipulated: Set[Tuple[ASN, ASN]] = set()
        for record in self.records:
            target = (
                baseline if record.phase in baseline_phases else manipulated
            )
            target.update(record.links())
        return manipulated - baseline

    def phase_census(self) -> Dict[str, int]:
        """Records per phase."""
        return dict(Counter(record.phase for record in self.records))

    # ------------------------------------------------------------------
    # JSON Lines serialization
    # ------------------------------------------------------------------

    def save(self, destination: PathOrIO) -> None:
        """Write as JSON Lines: a header line, then one line per record."""
        if isinstance(destination, (str, Path)):
            with open(destination, "w", encoding="utf-8") as handle:
                self._write(handle)
            return
        self._write(destination)

    def _write(self, handle: IO[str]) -> None:
        handle.write(json.dumps(JSONL_HEADER) + "\n")
        for record in self.records:
            handle.write(
                json.dumps(
                    {
                        "label": record.config_label,
                        "phase": record.phase,
                        "paths": {
                            str(source): list(path)
                            for source, path in sorted(record.paths.items())
                        },
                    }
                )
                + "\n"
            )

    @classmethod
    def load(cls, source: PathOrIO) -> "PathDataset":
        """Read a dataset written by :meth:`save`.

        Raises:
            DataFormatError: on a wrong header or malformed record lines.
        """
        if isinstance(source, (str, Path)):
            with open(source, "r", encoding="utf-8") as handle:
                return cls._read(handle)
        return cls._read(source)

    @classmethod
    def _read(cls, handle: IO[str]) -> "PathDataset":
        first = handle.readline()
        try:
            header = json.loads(first)
        except json.JSONDecodeError as exc:
            raise DataFormatError(f"bad path-dataset header: {first!r}") from exc
        if header != JSONL_HEADER:
            raise DataFormatError(f"unexpected path-dataset header {header!r}")
        records: List[PathRecord] = []
        for lineno, line in enumerate(handle, start=2):
            if not line.strip():
                continue
            try:
                raw = json.loads(line)
                record = PathRecord(
                    config_label=raw["label"],
                    phase=raw.get("phase", ""),
                    paths={
                        int(source): tuple(path)
                        for source, path in raw["paths"].items()
                    },
                )
            except (KeyError, TypeError, ValueError) as exc:
                raise DataFormatError(f"line {lineno}: {exc}") from exc
            records.append(record)
        return cls(records)
