"""Dataset export/import for offline reanalysis (paper §VI)."""

from .dataset import FORMAT_NAME, FORMAT_VERSION, ConfigRecord, Dataset
from .paths import PathDataset, PathRecord

__all__ = [
    "Dataset",
    "ConfigRecord",
    "FORMAT_NAME",
    "FORMAT_VERSION",
    "PathDataset",
    "PathRecord",
]
