"""repro — control-plane traceback of spoofed IP traffic.

Reproduction of Fonseca et al., *Tracking Down Sources of Spoofed IP
Packets* (IFIP Networking / CoNEXT 2019): a network with multiple peering
links systematically varies BGP announcement configurations (anycast
location subsets, AS-path prepending, BGP poisoning) to reshape per-link
catchments, then intersects catchments across configurations to partition
the Internet into small clusters and attribute observed spoofed traffic
to them.

Quickstart::

    from repro import build_testbed, SpoofTracker

    testbed = build_testbed(seed=1)
    tracker = SpoofTracker.from_testbed(testbed)
    report = tracker.run(max_configs=100)
    print(report.summary())

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-figure reproductions.
"""

from .bgp import AnnouncementConfig, PolicyModel, RoutingOutcome, RoutingSimulator, anycast_all
from .topology import (
    ASGraph,
    GeneratedTopology,
    OriginNetwork,
    Relationship,
    TopologyParams,
    attach_origin,
    generate_topology,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "ASGraph",
    "Relationship",
    "TopologyParams",
    "GeneratedTopology",
    "generate_topology",
    "OriginNetwork",
    "attach_origin",
    "AnnouncementConfig",
    "anycast_all",
    "PolicyModel",
    "RoutingSimulator",
    "RoutingOutcome",
    "build_testbed",
    "Testbed",
    "SpoofTracker",
    "TrackerReport",
]


def __getattr__(name):
    # Late imports keep `import repro` cheap and avoid import cycles while
    # the high-level pipeline pulls in every subsystem.
    if name in ("build_testbed", "Testbed", "SpoofTracker", "TrackerReport"):
        from . import core

        return getattr(core, name)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
