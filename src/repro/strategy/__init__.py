"""Pluggable traceback strategies (propose / observe / converged).

The interface that turns the repo from one paper into a traceback
evaluation platform: the batch tracker, the §V-C schedulers, and the
live adaptive controller all drive interchangeable
:class:`TracebackStrategy` objects, discovered by name through a
registry.  ``spooftrack compare`` races registered strategies on one
seeded testbed with a shared simulation cache.
"""

from .base import (
    NO_SPLIT_REASON,
    NOISE_FLOOR,
    StrategyRunResult,
    TracebackStrategy,
    run_strategy,
    weighted_cost,
    weighted_split_score,
)
from .builtin import (
    BisectStrategy,
    GreedyStrategy,
    PoisonWalkStrategy,
    RandomStrategy,
    ScheduleOrderStrategy,
    VolumeGreedyStrategy,
)
from .compare import (
    CompareReport,
    StrategyOutcome,
    compare_strategies,
    configs_to_convergence,
)
from .registry import (
    available_strategies,
    make_strategy,
    register_strategy,
    strategy_class,
)

__all__ = [
    "NO_SPLIT_REASON",
    "NOISE_FLOOR",
    "BisectStrategy",
    "CompareReport",
    "GreedyStrategy",
    "PoisonWalkStrategy",
    "RandomStrategy",
    "ScheduleOrderStrategy",
    "StrategyOutcome",
    "StrategyRunResult",
    "TracebackStrategy",
    "VolumeGreedyStrategy",
    "available_strategies",
    "compare_strategies",
    "configs_to_convergence",
    "make_strategy",
    "register_strategy",
    "run_strategy",
    "strategy_class",
    "weighted_cost",
    "weighted_split_score",
]
