"""``spooftrack compare``: race traceback strategies on one testbed.

Every contestant runs over the *same* seeded testbed, schedule, and
pre-measured catchment maps, streamed through one shared
:class:`~repro.core.engine.SimulationEngine` — the measurement pass is
paid once and every strategy decision afterwards is pure refinement
arithmetic, so a race of six strategies costs barely more than a lone
greedy run.  The report ranks strategies by final localization quality
(mean cluster size), then by configurations needed to reach it.

``configs_to_convergence`` is strategy-independent: the first step at
which a strategy's mean-cluster-size curve reaches its final value
(curves are non-increasing, so nothing after that step improved the
partition).  Dwell minutes charge the campaign timeline's per-config
dwell for every *deployed* configuration, converged or not — deploying
past convergence is exactly the waste the paper's §V-C ordering avoids.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

from ..core.configgen import ScheduleParams, generate_schedule
from ..core.engine import EngineStats, SimulationEngine
from ..core.scheduler import measured_catchment_history
from ..core.timeline import CampaignTimeline
from ..errors import StrategyError
from ..obs import Observability
from ..types import ASN
from .base import StrategyRunResult, run_strategy
from .registry import available_strategies, make_strategy


@dataclass(frozen=True)
class StrategyOutcome:
    """One contestant's results on the shared testbed."""

    strategy: str
    order: List[int]
    curve: List[float]
    stop_reason: str
    configs_deployed: int
    configs_to_convergence: int
    dwell_minutes: float
    final_clusters: int
    final_mean_cluster_size: float
    final_max_cluster_size: int

    def as_dict(self) -> Dict:
        """JSON-safe dump (round-trips through the ``--json`` artifact)."""
        return {
            "strategy": self.strategy,
            "order": list(self.order),
            "curve": [round(value, 6) for value in self.curve],
            "stop_reason": self.stop_reason,
            "configs_deployed": self.configs_deployed,
            "configs_to_convergence": self.configs_to_convergence,
            "dwell_minutes": round(self.dwell_minutes, 3),
            "final_clusters": self.final_clusters,
            "final_mean_cluster_size": round(
                self.final_mean_cluster_size, 6
            ),
            "final_max_cluster_size": self.final_max_cluster_size,
        }


@dataclass
class CompareReport:
    """Everything :func:`compare_strategies` produced.

    ``outcomes`` is ranked: best final mean cluster size first, ties
    broken by fewer configurations to convergence, then dwell, then
    name — a total, deterministic order.
    """

    seed: int
    universe_size: int
    candidate_configs: int
    outcomes: List[StrategyOutcome] = field(default_factory=list)
    engine_stats: Optional[EngineStats] = None

    def table(self) -> str:
        """Fixed-width ranking table for terminal display."""
        header = (
            f"{'rank':>4} {'strategy':<14} {'deployed':>8} "
            f"{'converged@':>10} {'dwell(min)':>10} {'mean':>7} "
            f"{'max':>5}  stop reason"
        )
        lines = [header, "-" * len(header)]
        for rank, outcome in enumerate(self.outcomes, start=1):
            lines.append(
                f"{rank:>4} {outcome.strategy:<14} "
                f"{outcome.configs_deployed:>8d} "
                f"{outcome.configs_to_convergence:>10d} "
                f"{outcome.dwell_minutes:>10.1f} "
                f"{outcome.final_mean_cluster_size:>7.2f} "
                f"{outcome.final_max_cluster_size:>5d}  "
                f"{outcome.stop_reason}"
            )
        return "\n".join(lines)

    def as_dict(self) -> Dict:
        """JSON-safe dump of the whole race."""
        return {
            "seed": self.seed,
            "universe_size": self.universe_size,
            "candidate_configs": self.candidate_configs,
            "strategies": [outcome.as_dict() for outcome in self.outcomes],
            "engine": (
                self.engine_stats.summary()
                if self.engine_stats is not None
                else None
            ),
        }

    def write_json(self, path: str) -> str:
        """Write the ``--json`` artifact; returns ``path``."""
        import os

        parent = os.path.dirname(path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.as_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        return path


def configs_to_convergence(curve: Sequence[float]) -> int:
    """First step at which the (non-increasing) curve hits its final value."""
    if not curve:
        return 0
    final = curve[-1]
    for step, value in enumerate(curve):
        if value == final:
            return step + 1
    return len(curve)


def _rank_key(outcome: StrategyOutcome):
    return (
        outcome.final_mean_cluster_size,
        outcome.configs_to_convergence,
        outcome.dwell_minutes,
        outcome.strategy,
    )


def compare_strategies(
    testbed,
    strategies: Optional[Sequence[str]] = None,
    max_configs: Optional[int] = None,
    workers: int = 1,
    seed: Optional[int] = None,
    volume_by_as: Optional[Mapping[ASN, float]] = None,
    timeline: Optional[CampaignTimeline] = None,
    obs: Optional[Observability] = None,
    engine: Optional[SimulationEngine] = None,
) -> CompareReport:
    """Race registered strategies on one seeded testbed.

    Args:
        testbed: a wired :class:`~repro.core.pipeline.Testbed`.
        strategies: registry names to race, in given order (duplicates
            collapse to the first occurrence; default: every registered
            strategy, sorted).
        max_configs: truncate the candidate schedule.
        workers: simulation worker processes for the shared measurement
            pass (ignored when ``engine`` is given).
        seed: seed for strategies with internal randomness (default:
            the testbed spec's seed, else 0).
        volume_by_as: optional static per-AS volume estimates fed to
            every contestant (e.g. ground-truth placement volumes).
        timeline: dwell-cost model (defaults to the paper's).
        obs: optional observability bundle — arms a ``premeasure`` span,
            one ``race`` span per contestant, and per-strategy counters
            (``repro_compare_configs_total{strategy=...}``).
        engine: pre-built engine to measure through (shared cache);
            a passed-in engine is not closed here.
    """
    names: List[str] = []
    for name in strategies if strategies is not None else available_strategies():
        if name not in names:
            names.append(name)
    if not names:
        raise StrategyError("no strategies to compare")
    obs = obs if obs is not None else Observability()
    timeline = timeline or CampaignTimeline()
    if seed is None:
        seed = testbed.spec.seed if testbed.spec is not None else 0

    schedule = generate_schedule(
        testbed.origin, testbed.graph, ScheduleParams()
    )
    if max_configs is not None:
        schedule = schedule[:max_configs]

    owns_engine = engine is None
    if engine is None:
        engine = SimulationEngine(
            testbed.simulator,
            workers=workers,
            spec=testbed.spec,
            bus=obs.bus,
            tracer=obs.tracer,
        )
    stats_before = engine.stats.copy()
    try:
        # One measurement pass, shared by every contestant.
        with obs.phase("premeasure", configs=len(schedule)) as span:
            with obs.capture():
                universe, history = measured_catchment_history(
                    engine, schedule
                )
            if span is not None:
                span.set("universe", len(universe))
        engine_stats = engine.stats.since(stats_before)
    finally:
        if owns_engine:
            engine.close()

    outcomes: List[StrategyOutcome] = []
    for name in names:
        strategy = make_strategy(name, seed=seed)
        with obs.phase("race", strategy=name) as span:
            result: StrategyRunResult = run_strategy(
                strategy,
                universe,
                history,
                schedule=schedule,
                volume_by_as=volume_by_as,
            )
            if span is not None:
                span.set("configs", len(result.order))
                span.set("stop", result.stop_reason)
        outcome = StrategyOutcome(
            strategy=name,
            order=result.order,
            curve=result.curve,
            stop_reason=result.stop_reason,
            configs_deployed=len(result.order),
            configs_to_convergence=configs_to_convergence(result.curve),
            dwell_minutes=len(result.order) * timeline.minutes_per_config,
            final_clusters=len(result.final_sizes),
            final_mean_cluster_size=result.final_mean_size,
            final_max_cluster_size=result.final_max_size,
        )
        outcomes.append(outcome)
        if obs.registry is not None:
            obs.registry.counter(
                "repro_compare_configs_total",
                help="configurations deployed per compared strategy",
                labels={"strategy": name},
            ).inc(len(result.order))
        if obs.bus is not None:
            obs.bus.publish(
                "compare",
                strategy=name,
                configs=len(result.order),
                mean_cluster_size=outcome.final_mean_cluster_size,
                stop_reason=result.stop_reason,
            )

    outcomes.sort(key=_rank_key)
    return CompareReport(
        seed=seed,
        universe_size=len(universe),
        candidate_configs=len(schedule),
        outcomes=outcomes,
        engine_stats=engine_stats,
    )
