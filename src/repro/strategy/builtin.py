"""Built-in traceback strategies.

* ``greedy`` — the paper's §V-C iterative algorithm (default plugin;
  bit-identical to the pre-plugin scheduler/controller behaviour).
* ``volume-greedy`` — §VIII volume-weighted greedy with a static volume
  estimate baked in at construction.
* ``bisect`` — binary-search catchment splitting: always attack the
  largest cluster with the configuration that bisects it most evenly.
* ``bgpeek`` — a BGPeek-a-Boo-style poisoning walk: maintain a suspect
  set, prefer poisoning-phase configurations that bisect the suspects'
  cluster, and commit to the highest-volume piece after each shift.
* ``random`` — seeded random deployment order (Figure 8's shaded
  baseline as a first-class strategy).
* ``schedule`` — deploy in given schedule order (the batch tracker's
  historical behaviour).
"""

from __future__ import annotations

import random
from typing import List, Mapping, Optional, Set, Tuple

from ..core.clustering import ClusterState
from ..core.configgen import PHASE_POISONING
from ..core.scheduler import refinement_gain
from ..types import ASN
from .base import (
    NO_SPLIT_REASON,
    TracebackStrategy,
    weighted_split_score,
)
from .registry import register_strategy


@register_strategy
class GreedyStrategy(TracebackStrategy):
    """The paper's iterative algorithm as a plugin (§V-C).

    Each step deploys the remaining configuration maximizing the
    lexicographic ``(weighted cost reduction, split gain)`` score — with
    no volume evidence the first component is identically zero and this
    reduces exactly to the §V-C unweighted greedy (the pre-plugin
    :class:`~repro.core.scheduler.GreedyScheduler` order).  With volume
    estimates it is the live controller's adaptive reordering, now with
    the split gain as an explicit tie-break instead of a ``* 1e-9``
    scaled fallback score.
    """

    name = "greedy"
    no_proposal_reason = NO_SPLIT_REASON

    def _volumes(
        self, volume_by_as: Optional[Mapping[ASN, float]]
    ) -> Mapping[ASN, float]:
        return volume_by_as or {}

    def propose(
        self,
        state: ClusterState,
        volume_by_as: Optional[Mapping[ASN, float]] = None,
    ) -> Optional[int]:
        volumes = self._volumes(volume_by_as)
        best_index: Optional[int] = None
        best_score: Tuple[float, int] = (0.0, 0)
        for index in self.remaining:
            score = weighted_split_score(
                state, self.catchment_maps[index], volumes
            )
            if score > best_score:
                best_score = score
                best_index = index
        return best_index


@register_strategy
class VolumeGreedyStrategy(GreedyStrategy):
    """Volume-weighted greedy with a construction-time volume estimate.

    The batch form of the §VIII objective: a static ``volume_by_as``
    (e.g. from an earlier localization pass) overrides whatever rolling
    estimate the driver supplies.  With an empty or all-zero estimate
    the weighted reduction is identically zero and selection falls back
    to the unweighted split gain — the schedule keeps refining instead
    of dead-stopping (the historical
    :class:`~repro.core.scheduler.VolumeAwareGreedyScheduler` bug).
    """

    name = "volume-greedy"

    def __init__(
        self,
        seed: int = 0,
        volume_by_as: Optional[Mapping[ASN, float]] = None,
    ) -> None:
        super().__init__(seed)
        self.volume_by_as = dict(volume_by_as or {})

    def _volumes(
        self, volume_by_as: Optional[Mapping[ASN, float]]
    ) -> Mapping[ASN, float]:
        if self.volume_by_as:
            return self.volume_by_as
        return volume_by_as or {}


@register_strategy
class ScheduleOrderStrategy(TracebackStrategy):
    """Deploy in the given schedule order (the batch tracker default).

    ``deploys_in_schedule_order`` lets the batch tracker skip the
    planning loop entirely — the plan *is* the schedule.  Driven through
    :func:`~repro.strategy.base.run_strategy` (e.g. by the compare
    harness) it still short-circuits once nothing can split, like every
    other strategy.
    """

    name = "schedule"
    deploys_in_schedule_order = True

    def propose(
        self,
        state: ClusterState,
        volume_by_as: Optional[Mapping[ASN, float]] = None,
    ) -> Optional[int]:
        return self.remaining[0] if self.remaining else None


@register_strategy
class RandomStrategy(TracebackStrategy):
    """Seeded random deployment order (Figure 8's shaded baseline).

    The shuffle is drawn once at bind time from ``random.Random(seed)``,
    so the order is a pure function of the seed and the candidate count
    — two processes with different ``PYTHONHASHSEED`` agree exactly.
    """

    name = "random"

    def _after_bind(self) -> None:
        self._order: List[int] = list(range(len(self.catchment_maps)))
        random.Random(self.seed).shuffle(self._order)

    def propose(
        self,
        state: ClusterState,
        volume_by_as: Optional[Mapping[ASN, float]] = None,
    ) -> Optional[int]:
        remaining = set(self.remaining)
        for index in self._order:
            if index in remaining:
                return index
        return None


@register_strategy
class BisectStrategy(TracebackStrategy):
    """Binary-search catchment splitting.

    Each step targets the largest current cluster and deploys the
    remaining configuration whose catchments carve it most evenly —
    minimizing the largest surviving piece of the target, the discrete
    analogue of halving a search interval.  When no configuration
    splits the largest cluster the next-largest is targeted, and so on;
    ties break toward the lowest schedule index.
    """

    name = "bisect"
    no_proposal_reason = NO_SPLIT_REASON

    def propose(
        self,
        state: ClusterState,
        volume_by_as: Optional[Mapping[ASN, float]] = None,
    ) -> Optional[int]:
        for target in state.clusters():
            if len(target) < 2:
                break  # clusters() is size-sorted: only singletons left
            best_index: Optional[int] = None
            best_key: Optional[Tuple[int, int]] = None
            for index in self.remaining:
                working = ClusterState(target)
                if not working.refine_with_catchments(
                    self.catchment_maps[index]
                ):
                    continue
                largest = len(working.clusters()[0])
                key = (largest, index)
                if best_key is None or key < best_key:
                    best_key = key
                    best_index = index
            if best_index is not None:
                return best_index
        return None


@register_strategy
class PoisonWalkStrategy(TracebackStrategy):
    """BGPeek-a-Boo-style poisoning walk.

    BGPeek-a-Boo traces amplification-DDoS sources by poisoning upstream
    ASes and bisecting the candidate set from the traffic shifts each
    poisoned announcement causes.  Mapped onto this repo's evidence
    model:

    * a **suspect set** starts as the whole universe and only narrows;
    * each step targets the cluster holding the most suspects and
      deploys the configuration that bisects those suspects most evenly,
      preferring *poisoning-phase* configurations (the walk's probing
      primitive) over locations/prepending/communities;
    * observing the deployment commits the walk to one piece of the
      split — the piece carrying the most estimated volume (the "traffic
      still arrives" signal), falling back to the smallest piece when no
      volume evidence exists;
    * the walk converges once a single suspect AS remains.

    The walk trades total partition quality for speed at pinning one
    source — in ``spooftrack compare`` it typically converges in the
    fewest configurations while leaving the largest residual clusters.
    """

    name = "bgpeek"
    no_proposal_reason = NO_SPLIT_REASON

    def __init__(self, seed: int = 0) -> None:
        super().__init__(seed)
        self._suspect_set: Optional[Set[ASN]] = None

    # -- suspect bookkeeping -------------------------------------------

    def _suspects(self, state: ClusterState) -> Set[ASN]:
        if self._suspect_set is None:
            self._suspect_set = set(state.universe)
        return self._suspect_set

    def _target_members(
        self, state: ClusterState, suspects: Set[ASN]
    ) -> Set[ASN]:
        """Suspects inside the cluster holding the most of them."""
        best: Set[ASN] = set()
        for cluster in state.clusters():
            overlap = suspects & cluster
            if len(overlap) > len(best):
                best = overlap
        return best

    def _is_poisoning(self, index: int) -> bool:
        if not self.schedule:
            return False
        return getattr(self.schedule[index], "phase", "") == PHASE_POISONING

    # -- the decision interface ----------------------------------------

    def propose(
        self,
        state: ClusterState,
        volume_by_as: Optional[Mapping[ASN, float]] = None,
    ) -> Optional[int]:
        target = self._target_members(state, self._suspects(state))
        if len(target) > 1:
            best_index: Optional[int] = None
            best_key: Optional[Tuple[int, int, int]] = None
            for index in self.remaining:
                working = ClusterState(target)
                if not working.refine_with_catchments(
                    self.catchment_maps[index]
                ):
                    continue
                largest = len(working.clusters()[0])
                key = (0 if self._is_poisoning(index) else 1, largest, index)
                if best_key is None or key < best_key:
                    best_key = key
                    best_index = index
            if best_index is not None:
                return best_index
        # The suspect cluster cannot be split (or is a singleton while
        # the walk hasn't formally converged): take the best global
        # unweighted split so the walk never stalls short of the base
        # convergence condition.
        best_index = None
        best_gain = 0
        for index in self.remaining:
            gain = refinement_gain(state, self.catchment_maps[index].values())
            if gain > best_gain:
                best_gain = gain
                best_index = index
        return best_index

    def observe(
        self,
        index: int,
        state: ClusterState,
        volume_by_as: Optional[Mapping[ASN, float]] = None,
    ) -> None:
        suspects = self._suspects(state)
        target = self._target_members(state, suspects)
        maps = self.catchment_maps[index]
        super().observe(index, state, volume_by_as)
        if len(target) <= 1:
            return
        working = ClusterState(target)
        if not working.refine_with_catchments(maps):
            return  # no shift observed; the suspect set stands
        volumes = volume_by_as or {}
        best_piece: Optional[Set[ASN]] = None
        best_key: Optional[Tuple[float, int, ASN]] = None
        for piece in working.clusters():
            volume = sum(volumes.get(asn, 0.0) for asn in piece)
            key = (-volume, len(piece), min(piece))
            if best_key is None or key < best_key:
                best_key = key
                best_piece = set(piece)
        assert best_piece is not None
        self._suspect_set = best_piece

    def converged(
        self,
        state: ClusterState,
        volume_by_as: Optional[Mapping[ASN, float]] = None,
    ) -> Optional[str]:
        suspects = self._suspects(state)
        if len(suspects) == 1:
            return f"suspect set narrowed to AS {next(iter(suspects))}"
        return super().converged(state, volume_by_as)

    # -- checkpointing --------------------------------------------------

    def extra_state(self) -> Mapping:
        return {
            "suspects": (
                sorted(self._suspect_set)
                if self._suspect_set is not None
                else None
            )
        }

    def restore_extra(self, payload: Mapping) -> None:
        suspects = payload.get("suspects")
        self._suspect_set = (
            set(suspects) if suspects is not None else None
        )
