"""The traceback-strategy interface and its batch driver.

The paper's §V-C greedy deployment used to be hardcoded into
:class:`~repro.core.scheduler.GreedyScheduler` and the live
:class:`~repro.live.controller.AdaptiveController`.  A
:class:`TracebackStrategy` factors the *decision* out of both: given the
current partition (and, when available, per-AS volume estimates), it
proposes the next announcement configuration to deploy, observes the
deployment, and reports convergence.  The batch scheduler, the batch
tracker, the live controller, and the ``spooftrack compare`` harness all
drive strategies through this one interface, so the paper's greedy
algorithm, a BGPeek-a-Boo-style poisoning walk, binary-search catchment
splitting, and random baselines are interchangeable everywhere.

Scoring convention shared by the greedy family (and the live
controller): a candidate configuration is valued by the lexicographic
tuple ``(weighted cost reduction, unweighted split gain)``.  Refinement
can only preserve or reduce the volume-weighted cluster cost, so any
computed *increase* — and any decrease within float-summation noise of
zero — is clamped to exactly ``0.0`` before comparison; without the
clamp, a 1e-12 artifact of summation order could outrank a real split
(the historical ``* 1e-9`` fallback-scaling bug).  Ties break toward the
lowest schedule index, which keeps every strategy deterministic under
any ``PYTHONHASHSEED``.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import (
    Callable,
    ClassVar,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from ..core.clustering import ClusterState
from ..core.scheduler import refinement_gain
from ..errors import StrategyError
from ..types import ASN, Catchment, LinkId

#: Relative threshold below which a weighted cost reduction is treated
#: as float-summation noise and clamped to exactly zero.
NOISE_FLOOR = 1e-9

#: Stop reason shared with the pre-plugin controller (string-identical,
#: so checkpoints and reports read the same across the refactor).
NO_SPLIT_REASON = "no remaining configuration splits any cluster"


def weighted_cost(
    state: ClusterState, volume_by_as: Mapping[ASN, float]
) -> float:
    """Σ over clusters of estimated cluster volume × cluster size.

    The §VIII volume-aware objective: splitting a busy cluster reduces
    the cost by (volume moved out) × (size shrinkage), so high-volume
    clusters are worth proportionally more to split.  Summation follows
    :meth:`ClusterState.clusters` order (largest cluster first), which
    makes the float result deterministic for a given partition.
    """
    cost = 0.0
    for cluster in state.clusters():
        volume = sum(volume_by_as.get(asn, 0.0) for asn in cluster)
        cost += volume * len(cluster)
    return cost


def weighted_split_score(
    state: ClusterState,
    catchments: Mapping[LinkId, Catchment],
    volume_by_as: Mapping[ASN, float],
) -> Tuple[float, int]:
    """Lexicographic ``(weighted reduction, split gain)`` of one config.

    Evaluated on a copy; ``state`` is untouched.  With no volume
    evidence the first component is exactly ``0.0`` and ranking falls
    back to the unweighted §V-C split gain.  Reductions within
    :data:`NOISE_FLOOR` (relative) of zero clamp to ``0.0`` — refinement
    cannot genuinely increase the cost, so anything that small is
    summation noise, not signal.
    """
    working = state.copy()
    if not volume_by_as:
        return (0.0, working.refine_with_catchments(catchments))
    before = weighted_cost(working, volume_by_as)
    splits = working.refine_with_catchments(catchments)
    if not splits:
        return (0.0, 0)
    reduction = before - weighted_cost(working, volume_by_as)
    if reduction <= NOISE_FLOOR * max(1.0, abs(before)):
        reduction = 0.0
    return (reduction, splits)


class TracebackStrategy(ABC):
    """One traceback algorithm: propose / observe / converged.

    A strategy is *bound* once to the measured evidence — one catchment
    map per candidate configuration (and optionally the configurations
    themselves, for phase-aware strategies) — then driven step by step:

    1. :meth:`converged` — stop reason, or None to continue;
    2. :meth:`propose` — index of the next configuration to deploy
       (None when nothing remaining is worth deploying);
    3. :meth:`observe` — the proposal was deployed; consume it from the
       remaining pool and update internal beliefs.

    ``state`` arguments carry the partition *before* the observed
    configuration refines it; strategies derive post-deployment
    structure from their own catchment maps.  Implementations must stay
    deterministic: iterate sorted structures only, and draw randomness
    exclusively from ``random.Random(self.seed)``.

    Args:
        seed: seed for any internal randomness (ignored by the
            deterministic built-ins).
    """

    #: Registry name (set by concrete strategies).
    name: ClassVar[str] = ""
    #: True when the strategy always deploys the bound schedule in its
    #: given order — drivers may then skip the per-step planning loop.
    deploys_in_schedule_order: ClassVar[bool] = False
    #: Stop reason reported when :meth:`propose` returns None.
    no_proposal_reason: ClassVar[str] = "nothing left worth deploying"

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self.catchment_maps: List[Dict[LinkId, Catchment]] = []
        self.schedule: List = []
        self.remaining: List[int] = []
        self.universe: Optional[List[ASN]] = None
        self._bound = False

    # ------------------------------------------------------------------
    # Binding
    # ------------------------------------------------------------------

    @property
    def bound(self) -> bool:
        """True once :meth:`bind` has attached evidence."""
        return self._bound

    def bind(
        self,
        catchment_maps: Sequence[Mapping[LinkId, Catchment]],
        schedule: Optional[Sequence] = None,
        universe: Optional[Sequence[ASN]] = None,
    ) -> "TracebackStrategy":
        """Attach the measured evidence; returns self for chaining.

        Args:
            catchment_maps: one catchment map per candidate
                configuration (typically pre-restricted to the analysis
                universe).
            schedule: the :class:`AnnouncementConfig` objects aligned
                with ``catchment_maps`` (phase-aware strategies read
                ``config.phase``; optional otherwise).
            universe: the analysis universe (optional; strategies that
                need it lazily read it off the first ``state`` instead).
        """
        if self._bound:
            raise StrategyError(f"strategy {self.name!r} is already bound")
        if not catchment_maps:
            raise StrategyError("strategy needs at least one catchment map")
        if schedule is not None and len(schedule) != len(catchment_maps):
            raise StrategyError(
                f"{len(schedule)} configurations vs "
                f"{len(catchment_maps)} catchment maps"
            )
        self.catchment_maps = [dict(maps) for maps in catchment_maps]
        self.schedule = list(schedule) if schedule is not None else []
        self.universe = sorted(universe) if universe is not None else None
        self.remaining = list(range(len(self.catchment_maps)))
        self._bound = True
        self._after_bind()
        return self

    def _after_bind(self) -> None:
        """Hook for subclasses (e.g. seeding a shuffled order)."""

    # ------------------------------------------------------------------
    # The decision interface
    # ------------------------------------------------------------------

    @abstractmethod
    def propose(
        self,
        state: ClusterState,
        volume_by_as: Optional[Mapping[ASN, float]] = None,
    ) -> Optional[int]:
        """Index of the next configuration to deploy, or None.

        ``volume_by_as`` carries rolling per-AS volume estimates when
        the driver has them (live attribution, a prior localization
        pass); None or empty means no volume evidence yet.
        """

    def observe(
        self,
        index: int,
        state: ClusterState,
        volume_by_as: Optional[Mapping[ASN, float]] = None,
    ) -> None:
        """Record that ``index`` was deployed (pre-refinement ``state``).

        The base implementation consumes the index from the remaining
        pool; subclasses extend it to update beliefs (e.g. narrowing a
        suspect set from the catchment shift the deployment causes).
        """
        try:
            self.remaining.remove(index)
        except ValueError:
            raise StrategyError(
                f"configuration {index} is not in the remaining pool"
            ) from None

    def converged(
        self,
        state: ClusterState,
        volume_by_as: Optional[Mapping[ASN, float]] = None,
    ) -> Optional[str]:
        """Stop reason, or None to keep deploying.

        The base check mirrors the live controller's historical
        short-circuit: stop when the candidate pool is exhausted or when
        no remaining configuration can split any cluster.
        """
        if not self.remaining:
            return "schedule exhausted"
        if all(
            refinement_gain(state, self.catchment_maps[i].values()) == 0
            for i in self.remaining
        ):
            return NO_SPLIT_REASON
        return None

    # ------------------------------------------------------------------
    # Remeasurement / checkpointing hooks
    # ------------------------------------------------------------------

    def update_catchments(
        self, fresh_maps: Sequence[Mapping[LinkId, Catchment]]
    ) -> None:
        """Swap in remeasured catchment maps (same alignment)."""
        if self._bound and len(fresh_maps) != len(self.catchment_maps):
            raise StrategyError(
                f"{len(fresh_maps)} remeasured maps for "
                f"{len(self.catchment_maps)} configurations"
            )
        self.catchment_maps = [dict(maps) for maps in fresh_maps]

    def restore_remaining(self, remaining: Sequence[int]) -> None:
        """Restore the remaining pool from a checkpoint."""
        self.remaining = [int(index) for index in remaining]

    def extra_state(self) -> Dict:
        """JSON-safe strategy-private state beyond the remaining pool."""
        return {}

    def restore_extra(self, payload: Mapping) -> None:
        """Restore state dumped by :meth:`extra_state`."""


@dataclass(frozen=True)
class StrategyRunResult:
    """Everything one batch strategy run produced.

    Attributes:
        strategy: registry name of the strategy that ran.
        order: deployment order, as indices into the bound evidence.
        curve: per-step metric (mean cluster size unless the driver was
            given a custom ``curve_metric``).
        stop_reason: why the run ended.
        final_sizes: final cluster sizes, descending.
    """

    strategy: str
    order: List[int]
    curve: List[float]
    stop_reason: str
    final_sizes: List[int]

    @property
    def final_mean_size(self) -> float:
        """Final mean cluster size."""
        return sum(self.final_sizes) / len(self.final_sizes)

    @property
    def final_max_size(self) -> int:
        """Size of the final largest cluster."""
        return max(self.final_sizes)


def run_strategy(
    strategy: TracebackStrategy,
    universe: Sequence[ASN],
    catchment_maps: Optional[Sequence[Mapping[LinkId, Catchment]]] = None,
    schedule: Optional[Sequence] = None,
    max_steps: Optional[int] = None,
    volume_by_as: Optional[Mapping[ASN, float]] = None,
    curve_metric: Optional[Callable[[ClusterState], float]] = None,
    check_converged: bool = True,
) -> StrategyRunResult:
    """Drive one strategy over pre-measured evidence to completion.

    The batch analogue of the live controller's loop: converged? →
    propose → observe → refine → record, until the strategy stops, the
    step budget runs out, or the pool drains.

    Args:
        strategy: the strategy to drive; bound here when not already.
        universe: sources to partition.
        catchment_maps: evidence to bind (ignored when ``strategy`` is
            already bound).
        schedule: configurations aligned with ``catchment_maps``.
        max_steps: deploy at most this many configurations.
        volume_by_as: static per-AS volume estimates to feed the
            strategy (None = no volume evidence).
        curve_metric: per-step curve value (default: mean cluster size).
        check_converged: consult :meth:`TracebackStrategy.converged`
            before each proposal.  The greedy family's proposals already
            subsume its base convergence check, so tight inner loops
            (:meth:`GreedyScheduler.run`) skip the redundant scan.
    """
    if not strategy.bound:
        if catchment_maps is None:
            raise StrategyError("unbound strategy needs catchment maps")
        strategy.bind(catchment_maps, schedule=schedule, universe=universe)
    maps = strategy.catchment_maps
    steps = len(maps) if max_steps is None else min(max_steps, len(maps))
    state = ClusterState(universe)
    order: List[int] = []
    curve: List[float] = []
    stop_reason = ""
    while len(order) < steps:
        if check_converged:
            reason = strategy.converged(state, volume_by_as)
            if reason is not None:
                stop_reason = reason
                break
        index = strategy.propose(state, volume_by_as)
        if index is None:
            stop_reason = strategy.no_proposal_reason
            break
        strategy.observe(index, state, volume_by_as)
        state.refine_with_catchments(maps[index])
        order.append(index)
        curve.append(
            curve_metric(state) if curve_metric is not None
            else state.mean_size()
        )
    else:
        stop_reason = (
            "schedule exhausted" if not strategy.remaining
            else "step budget exhausted"
        )
    return StrategyRunResult(
        strategy=strategy.name,
        order=order,
        curve=curve,
        stop_reason=stop_reason,
        final_sizes=[len(cluster) for cluster in state.clusters()],
    )
