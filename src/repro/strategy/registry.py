"""Name-based registry of traceback strategies.

Strategies register under a stable name (``"greedy"``, ``"bgpeek"``,
…) so the CLI, the live controller's policy, checkpoints, and the
compare harness can all refer to them by string.  Third-party code can
register additional strategies with :func:`register_strategy` (usable
as a decorator) before building a controller or compare run.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Type

from ..errors import StrategyError
from .base import TracebackStrategy

_REGISTRY: Dict[str, Type[TracebackStrategy]] = {}


def register_strategy(
    cls: Type[TracebackStrategy],
) -> Type[TracebackStrategy]:
    """Register a strategy class under its ``name`` (decorator-friendly).

    Re-registering the same class is a no-op; registering a *different*
    class under an existing name raises — silent shadowing would make
    checkpointed strategy names ambiguous.
    """
    name = getattr(cls, "name", "")
    if not name:
        raise StrategyError(f"{cls.__name__} has no registry name")
    existing = _REGISTRY.get(name)
    if existing is not None and existing is not cls:
        raise StrategyError(
            f"strategy name {name!r} is already registered "
            f"by {existing.__name__}"
        )
    _REGISTRY[name] = cls
    return cls


def available_strategies() -> List[str]:
    """Registered strategy names, sorted for deterministic display."""
    return sorted(_REGISTRY)


def strategy_class(name: str) -> Type[TracebackStrategy]:
    """The registered class for ``name``.

    Raises:
        StrategyError: for unknown names, listing what is available.
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        raise StrategyError(
            f"unknown strategy {name!r}; "
            f"available: {', '.join(available_strategies())}"
        ) from None


def make_strategy(name: str, seed: int = 0, **kwargs) -> TracebackStrategy:
    """Instantiate a registered strategy by name."""
    return strategy_class(name)(seed=seed, **kwargs)
