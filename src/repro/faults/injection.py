"""Interposition hooks that fire faults from a :class:`FaultPlan`.

One :class:`FaultInjector` instance is threaded through every subsystem
that can fail in production: the :class:`~repro.core.engine.SimulationEngine`
(worker crashes and hangs), :class:`~repro.measurement.campaign.MeasurementCampaign`
(collector flaps, lost traceroutes), the batch pipeline's ground-truth
catchments (measurement loss → partial maps), and the live runtime
(volume-noise bursts, route-churn storms, checkpoint corruption).

Decisions are made *centrally* — in the driving process, from the plan's
seeded digests — and only the resulting :class:`FaultAction` is executed
at the site (possibly inside a worker process).  That keeps chaos runs
deterministic regardless of worker count or scheduling, and lets the
injector's :class:`FaultLog` account every fired fault in one place.
"""

from __future__ import annotations

import random
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Tuple

from ..errors import InjectedFault
from ..types import Catchment, LinkId
from .plan import (
    CHECKPOINT_CORRUPTION,
    COLLECTOR_FLAP,
    MEASUREMENT_LOSS,
    ROUTE_CHURN,
    VOLUME_NOISE,
    WORKER_CRASH,
    WORKER_HANG,
    FaultPlan,
)

#: Action kinds executable at a simulation site.
ACTION_CRASH = "crash"
ACTION_HANG = "hang"


@dataclass(frozen=True)
class FaultAction:
    """A decided fault, ready to execute at its site."""

    kind: str
    delay_seconds: float = 0.0

    def execute(self) -> None:
        """Carry the fault out: raise (crash) or stall (hang)."""
        if self.kind == ACTION_CRASH:
            raise InjectedFault("injected worker crash")
        time.sleep(self.delay_seconds)


@dataclass
class FaultLog:
    """Counts of fired faults by kind (main-process accounting).

    ``listeners`` (excluded from equality/serialization) are invoked as
    ``listener(kind, count)`` on every record — the hook the CLI uses to
    forward fault events onto the observability bus without the faults
    layer importing :mod:`repro.obs`.
    """

    by_kind: Dict[str, int] = field(default_factory=dict)
    listeners: List[Callable[[str, int], None]] = field(
        default_factory=list, repr=False, compare=False
    )

    def record(self, kind: str, count: int = 1) -> None:
        """Account ``count`` fired faults of ``kind``."""
        self.by_kind[kind] = self.by_kind.get(kind, 0) + count
        for listener in self.listeners:
            listener(kind, count)

    @property
    def total(self) -> int:
        """All fired faults."""
        return sum(self.by_kind.values())

    def as_dict(self) -> Dict[str, int]:
        """Sorted copy for reports."""
        return {kind: self.by_kind[kind] for kind in sorted(self.by_kind)}


class FaultInjector:
    """Evaluates a :class:`FaultPlan` at every injection site.

    The injector is stateless apart from its :class:`FaultLog` and a
    suppression flag: every decision derives from the plan's seed and the
    site's tokens, so two injectors over the same plan make identical
    decisions in any order.  An injector over the empty plan is inert —
    each hook returns its input unchanged.
    """

    def __init__(self, plan: Optional[FaultPlan] = None) -> None:
        self.plan = plan or FaultPlan()
        self.log = FaultLog()
        self._suppressed = 0

    @property
    def active(self) -> bool:
        """Whether any fault can currently fire."""
        return not self._suppressed and bool(self.plan.specs)

    @contextmanager
    def suppressed(self):
        """Disable injection inside the block (retry-exhaustion bypass)."""
        self._suppressed += 1
        try:
            yield self
        finally:
            self._suppressed -= 1

    # ------------------------------------------------------------------
    # Simulation engine site
    # ------------------------------------------------------------------

    def simulation_action(
        self, ordinal: int, token: str, attempt: int = 0
    ) -> Optional[FaultAction]:
        """Fault to execute for one simulation task, or None.

        Args:
            ordinal: the task's position among the engine's distinct
                simulations (drives spec start/stop windows).
            token: canonical configuration identity.
            attempt: retry ordinal — decisions are re-drawn per attempt,
                so bounded retries can outlast a sub-certain crash rate.

        Crash takes precedence over hang when both fire.
        """
        if not self.active:
            return None
        for position, spec in self.plan.specs_for(WORKER_CRASH):
            if not spec.active_at(ordinal):
                continue
            if self.plan.decision(WORKER_CRASH, position, token, attempt) < spec.rate:
                self.log.record(WORKER_CRASH)
                return FaultAction(kind=ACTION_CRASH)
        for position, spec in self.plan.specs_for(WORKER_HANG):
            if not spec.active_at(ordinal):
                continue
            if self.plan.decision(WORKER_HANG, position, token, attempt) < spec.rate:
                self.log.record(WORKER_HANG)
                return FaultAction(
                    kind=ACTION_HANG, delay_seconds=spec.delay_seconds
                )
        return None

    # ------------------------------------------------------------------
    # Catchment / measurement sites
    # ------------------------------------------------------------------

    def degrade_catchments(
        self, index: int, catchments: Mapping[LinkId, Catchment]
    ) -> Tuple[Dict[LinkId, Catchment], frozenset]:
        """Apply measurement loss to one configuration's catchment maps.

        Returns the (possibly thinned) maps and the set of links whose
        catchments are now partial.  Degraded links must be treated as
        lossy evidence: clustering skips them (widening clusters) instead
        of splitting sources on members that merely went unmeasured.
        """
        maps: Dict[LinkId, Catchment] = {
            link: frozenset(members) for link, members in catchments.items()
        }
        degraded: set = set()
        if not self.active:
            return maps, frozenset()
        for position, spec in self.plan.specs_for(MEASUREMENT_LOSS):
            if not spec.active_at(index) or spec.intensity <= 0:
                continue
            if self.plan.decision(MEASUREMENT_LOSS, position, index) >= spec.rate:
                continue
            rng = random.Random(
                f"{self.plan.seed}|{MEASUREMENT_LOSS}|{position}|{index}"
            )
            for link in sorted(maps):
                kept = frozenset(
                    asn
                    for asn in sorted(maps[link])
                    if rng.random() >= spec.intensity
                )
                if kept != maps[link]:
                    maps[link] = kept
                    degraded.add(link)
        if degraded:
            self.log.record(MEASUREMENT_LOSS)
        return maps, frozenset(degraded)

    def flap_collectors(
        self, index: int, observations: Mapping
    ) -> Tuple[Dict, int]:
        """Drop vantage observations for one configuration (collector flap).

        Returns the surviving observations and the number dropped.
        """
        if not self.active:
            return dict(observations), 0
        surviving = dict(observations)
        dropped = 0
        for position, spec in self.plan.specs_for(COLLECTOR_FLAP):
            if not spec.active_at(index) or spec.intensity <= 0:
                continue
            if self.plan.decision(COLLECTOR_FLAP, position, index) >= spec.rate:
                continue
            rng = random.Random(
                f"{self.plan.seed}|{COLLECTOR_FLAP}|{position}|{index}"
            )
            for vantage in sorted(surviving):
                if rng.random() < spec.intensity:
                    del surviving[vantage]
                    dropped += 1
        if dropped:
            self.log.record(COLLECTOR_FLAP, dropped)
        return surviving, dropped

    def drop_traceroutes(self, index: int, traceroutes: List) -> Tuple[List, int]:
        """Lose a fraction of one configuration's traceroutes.

        Returns the surviving traceroutes (order preserved) and the
        number lost.
        """
        if not self.active:
            return list(traceroutes), 0
        surviving = list(traceroutes)
        lost = 0
        for position, spec in self.plan.specs_for(MEASUREMENT_LOSS):
            if not spec.active_at(index) or spec.intensity <= 0:
                continue
            if self.plan.decision(MEASUREMENT_LOSS, position, "traces", index) >= spec.rate:
                continue
            rng = random.Random(
                f"{self.plan.seed}|{MEASUREMENT_LOSS}|traces|{position}|{index}"
            )
            kept = [trace for trace in surviving if rng.random() >= spec.intensity]
            lost += len(surviving) - len(kept)
            surviving = kept
        if lost:
            self.log.record(MEASUREMENT_LOSS, lost)
        return surviving, lost

    # ------------------------------------------------------------------
    # Live-runtime sites
    # ------------------------------------------------------------------

    def volume_noise_factor(self, window_index: int, batch_index: int) -> float:
        """Multiplicative volume perturbation for one traffic batch.

        1.0 means no burst fired.  The factor scales attributed and
        unattributed volume alike, so conservation is preserved.
        """
        factor = 1.0
        if not self.active:
            return factor
        for position, spec in self.plan.specs_for(VOLUME_NOISE):
            if not spec.active_at(window_index) or spec.intensity <= 0:
                continue
            draw = self.plan.decision(
                VOLUME_NOISE, position, window_index, batch_index
            )
            if draw >= spec.rate:
                continue
            rng = random.Random(
                f"{self.plan.seed}|{VOLUME_NOISE}|{position}|{window_index}|{batch_index}"
            )
            factor *= max(0.0, 1.0 + rng.uniform(-spec.intensity, spec.intensity))
            self.log.record(VOLUME_NOISE)
        return factor

    def extra_churn(self, window_index: int) -> Optional[float]:
        """Route-churn-storm drift striking this window, or None."""
        if not self.active:
            return None
        for position, spec in self.plan.specs_for(ROUTE_CHURN):
            if not spec.active_at(window_index) or spec.intensity <= 0:
                continue
            if self.plan.decision(ROUTE_CHURN, position, window_index) < spec.rate:
                self.log.record(ROUTE_CHURN)
                return min(1.0, spec.intensity)
        return None

    # ------------------------------------------------------------------
    # Checkpoint site
    # ------------------------------------------------------------------

    def should_corrupt_checkpoint(self, ordinal: int) -> bool:
        """Whether the ``ordinal``-th checkpoint write gets corrupted."""
        if not self.active:
            return False
        for position, spec in self.plan.specs_for(CHECKPOINT_CORRUPTION):
            if not spec.active_at(ordinal):
                continue
            if self.plan.decision(CHECKPOINT_CORRUPTION, position, ordinal) < spec.rate:
                return True
        return False

    def corrupt_file(self, path: str, ordinal: int) -> None:
        """Deterministically mangle a written checkpoint (torn write).

        Truncates to a seeded fraction and appends garbage, simulating a
        crash mid-write on a filesystem without atomic rename.
        """
        rng = random.Random(
            f"{self.plan.seed}|{CHECKPOINT_CORRUPTION}|{ordinal}"
        )
        with open(path, "rb") as handle:
            data = handle.read()
        cut = int(len(data) * rng.uniform(0.2, 0.8))
        with open(path, "wb") as handle:
            handle.write(data[:cut])
            handle.write(b"\x00CORRUPT\x00")
        self.log.record(CHECKPOINT_CORRUPTION)
