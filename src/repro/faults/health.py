"""Runtime invariant monitoring and the per-run resilience report.

The invariants are the properties the paper's method rests on and that
no amount of injected failure may silently break:

* **Volume conservation** — every observed volume map satisfies
  ``offered == attributed + unattributed`` (traffic is dropped or
  degraded *explicitly*, never lost in accounting).
* **Partition coverage** — the final clusters partition the source
  universe exactly: disjoint, non-empty, union equal to the universe.
* **Monotone refinement** — catchment intersection only ever splits
  clusters, so the cluster count never decreases across deployed
  configurations.

An :class:`InvariantMonitor` accumulates check results; the run then
freezes them — together with the injector's fault log and the engine's
containment counters — into a :class:`ResilienceReport` attached to the
:class:`~repro.core.pipeline.TrackerReport`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence

from ..types import ASN

#: Relative tolerance for volume-conservation checks (float accumulation).
VOLUME_TOLERANCE = 1e-6


@dataclass(frozen=True)
class InvariantViolation:
    """One failed runtime check."""

    name: str
    detail: str

    def __str__(self) -> str:
        return f"{self.name}: {self.detail}"


class InvariantMonitor:
    """Accumulates invariant check outcomes across one run."""

    def __init__(self) -> None:
        self.checks = 0
        self.violations: List[InvariantViolation] = []

    def check(self, name: str, ok: bool, detail: str = "") -> bool:
        """Record one check; returns ``ok`` for convenient chaining."""
        self.checks += 1
        if not ok:
            self.violations.append(InvariantViolation(name=name, detail=detail))
        return ok

    # -- the paper's invariants ----------------------------------------

    def check_volume_conservation(
        self, offered: float, attributed: float, unattributed: float
    ) -> bool:
        """``offered == attributed + unattributed`` within tolerance."""
        accounted = attributed + unattributed
        scale = max(1.0, abs(offered))
        ok = abs(offered - accounted) <= VOLUME_TOLERANCE * scale
        return self.check(
            "volume-conservation",
            ok,
            f"offered={offered!r} != attributed+unattributed={accounted!r}",
        )

    def check_partition_coverage(
        self,
        universe: FrozenSet[ASN],
        clusters: Iterable[FrozenSet[ASN]],
    ) -> bool:
        """Clusters are disjoint, non-empty, and cover the universe."""
        seen: set = set()
        for cluster in clusters:
            if not cluster:
                return self.check(
                    "partition-coverage", False, "empty cluster in partition"
                )
            overlap = seen & set(cluster)
            if overlap:
                return self.check(
                    "partition-coverage",
                    False,
                    f"ASes {sorted(overlap)[:5]} appear in multiple clusters",
                )
            seen.update(cluster)
        missing = universe - seen
        extra = seen - universe
        ok = not missing and not extra
        return self.check(
            "partition-coverage",
            ok,
            f"{len(missing)} sources uncovered, {len(extra)} outside universe",
        )

    def check_monotone_refinement(self, cluster_counts: Sequence[int]) -> bool:
        """Cluster counts never decrease along the deployment sequence."""
        for earlier, later in zip(cluster_counts, cluster_counts[1:]):
            if later < earlier:
                return self.check(
                    "monotone-refinement",
                    False,
                    f"cluster count fell from {earlier} to {later}",
                )
        return self.check("monotone-refinement", True)


@dataclass
class ResilienceReport:
    """What the resilience layer saw, contained, and verified in one run.

    Attributes:
        plan_name: the driving fault plan's name ("" without a plan).
        faults_injected: fired faults by kind (from the injector's log).
        worker_failures: pool tasks that died or timed out (injected or
            real) and were re-run serially.
        worker_error: repr of the most recent exception a worker failure
            was contained from ("" when none occurred) — previously the
            detail vanished into the broad containment handler.
        retries: serial retry attempts spent on injected faults.
        faults_bypassed: tasks whose injected fault outlived the retry
            budget and ran with injection suppressed (last-resort
            progress guarantee).
        pool_rebuilds: worker pools torn down after a failure.
        circuit_open: whether the breaker abandoned parallel fan-out.
        degraded_configs: configurations whose catchments were partial
            (clustering skipped their degraded links).
        checkpoint_corruptions: checkpoint writes mangled by the plan.
        checkpoint_rollbacks: restores that fell back to a rotated copy.
        invariant_checks: runtime invariant checks evaluated.
        violations: human-readable failed checks (empty = healthy).
    """

    plan_name: str = ""
    faults_injected: Dict[str, int] = field(default_factory=dict)
    worker_failures: int = 0
    worker_error: str = ""
    retries: int = 0
    faults_bypassed: int = 0
    pool_rebuilds: int = 0
    circuit_open: bool = False
    degraded_configs: int = 0
    checkpoint_corruptions: int = 0
    checkpoint_rollbacks: int = 0
    invariant_checks: int = 0
    violations: List[str] = field(default_factory=list)

    @property
    def healthy(self) -> bool:
        """True when every runtime invariant held."""
        return not self.violations

    @property
    def total_faults(self) -> int:
        """All fired faults across kinds."""
        return sum(self.faults_injected.values())

    def summary(self) -> str:
        """One-line human-readable rendering."""
        fired = (
            ", ".join(
                f"{kind}×{count}"
                for kind, count in sorted(self.faults_injected.items())
            )
            or "none"
        )
        health = (
            f"{self.invariant_checks} invariants ok"
            if self.healthy
            else f"{len(self.violations)} INVARIANT VIOLATIONS"
        )
        parts = [f"faults: {fired}"]
        if self.retries or self.faults_bypassed:
            parts.append(
                f"{self.retries} retries ({self.faults_bypassed} bypassed)"
            )
        if self.worker_failures:
            parts.append(
                f"{self.worker_failures} worker failures"
                + (" [circuit open]" if self.circuit_open else "")
                + (f" (last: {self.worker_error})" if self.worker_error else "")
            )
        if self.degraded_configs:
            parts.append(f"{self.degraded_configs} degraded configs")
        if self.checkpoint_corruptions or self.checkpoint_rollbacks:
            parts.append(
                f"{self.checkpoint_corruptions} ckpt corruptions / "
                f"{self.checkpoint_rollbacks} rollbacks"
            )
        parts.append(health)
        return "; ".join(parts)


def build_resilience_report(
    injector,
    monitor: Optional[InvariantMonitor] = None,
    engine_stats=None,
    degraded_configs: int = 0,
    checkpoint_corruptions: int = 0,
    checkpoint_rollbacks: int = 0,
    circuit_open: bool = False,
) -> ResilienceReport:
    """Freeze one run's resilience picture into a report.

    Args:
        injector: the run's :class:`~repro.faults.injection.FaultInjector`
            (may be None when only engine containment is of interest).
        monitor: invariant monitor populated during the run.
        engine_stats: :class:`~repro.core.engine.EngineStats` delta for
            the run (containment counters are read off it).
    """
    report = ResilienceReport(
        plan_name=injector.plan.name if injector is not None else "",
        faults_injected=injector.log.as_dict() if injector is not None else {},
        degraded_configs=degraded_configs,
        checkpoint_corruptions=checkpoint_corruptions,
        checkpoint_rollbacks=checkpoint_rollbacks,
        circuit_open=circuit_open,
    )
    if engine_stats is not None:
        report.worker_failures = engine_stats.worker_failures
        report.worker_error = getattr(engine_stats, "last_worker_error", "")
        report.retries = engine_stats.retries
        report.faults_bypassed = engine_stats.faults_bypassed
        report.pool_rebuilds = engine_stats.pool_rebuilds
    if monitor is not None:
        report.invariant_checks = monitor.checks
        report.violations = [str(violation) for violation in monitor.violations]
    return report
