"""Deterministic fault injection and graceful degradation (`repro.faults`).

The paper's method runs on infrastructure where failure is the norm —
lost traceroutes, collector outages, slow convergence, interrupted
campaigns.  This package makes failure a first-class, *seeded* input:

* :mod:`~repro.faults.plan` — declarative :class:`FaultPlan` /
  :class:`FaultSpec` schedules, bit-reproducible by construction.
* :mod:`~repro.faults.injection` — the :class:`FaultInjector` hooks
  wired into the engine, measurement campaign, and live runtime.
* :mod:`~repro.faults.resilience` — the defenses: :class:`RetryPolicy`,
  :class:`CircuitBreaker`, atomic checksummed writes.
* :mod:`~repro.faults.health` — the :class:`InvariantMonitor` and the
  :class:`ResilienceReport` attached to tracker reports.
"""

from .health import (
    InvariantMonitor,
    InvariantViolation,
    ResilienceReport,
    build_resilience_report,
)
from .injection import FaultAction, FaultInjector, FaultLog
from .plan import (
    BUNDLED_PLANS,
    CHECKPOINT_CORRUPTION,
    COLLECTOR_FLAP,
    FAULT_KINDS,
    INFRA_FAULT_KINDS,
    MEASUREMENT_LOSS,
    ROUTE_CHURN,
    VOLUME_NOISE,
    WORKER_CRASH,
    WORKER_HANG,
    FaultPlan,
    FaultSpec,
    escalation_curve,
    load_fault_plan,
    stable_unit,
)
from .resilience import (
    CircuitBreaker,
    RetryPolicy,
    atomic_write_text,
    content_checksum,
)

__all__ = [
    "BUNDLED_PLANS",
    "CHECKPOINT_CORRUPTION",
    "COLLECTOR_FLAP",
    "CircuitBreaker",
    "FAULT_KINDS",
    "INFRA_FAULT_KINDS",
    "FaultAction",
    "FaultInjector",
    "FaultLog",
    "FaultPlan",
    "FaultSpec",
    "InvariantMonitor",
    "InvariantViolation",
    "MEASUREMENT_LOSS",
    "ROUTE_CHURN",
    "ResilienceReport",
    "RetryPolicy",
    "VOLUME_NOISE",
    "WORKER_CRASH",
    "WORKER_HANG",
    "atomic_write_text",
    "build_resilience_report",
    "content_checksum",
    "escalation_curve",
    "load_fault_plan",
    "stable_unit",
]
