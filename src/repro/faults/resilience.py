"""Defenses the chaos layer proves out: retries, breakers, atomic writes.

Everything here is deliberately deterministic.  Backoff delays follow a
fixed exponential schedule (no jitter — reproducibility beats thundering
herds in a single-origin system), the circuit breaker trips on an exact
consecutive-failure count, and checkpoint integrity uses a content
checksum over the canonical JSON encoding.
"""

from __future__ import annotations

import hashlib
import os
import time
from dataclasses import dataclass
from typing import Callable, Optional

from ..errors import ReproError


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded-retry + backoff + timeout knobs for one task class.

    Attributes:
        max_retries: additional attempts after the first failure.
        backoff_base: seconds slept before retry 1.
        backoff_factor: multiplier applied per further retry.
        task_timeout: per-task wall-clock cap in seconds when tasks run
            on a worker pool (None = wait forever).  A timeout counts as
            a worker failure: the pool is replaced and work resumes
            serially, so one hung worker cannot stall a campaign.
    """

    max_retries: int = 3
    backoff_base: float = 0.01
    backoff_factor: float = 2.0
    task_timeout: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ReproError("max_retries cannot be negative")
        if self.backoff_base < 0 or self.backoff_factor < 0:
            raise ReproError("backoff parameters cannot be negative")
        if self.task_timeout is not None and self.task_timeout <= 0:
            raise ReproError("task timeout must be positive")

    def delay_for(self, retry: int) -> float:
        """Seconds to sleep before the ``retry``-th retry (0-based)."""
        return self.backoff_base * self.backoff_factor**retry

    def sleep_before(self, retry: int, sleeper: Callable[[float], None] = time.sleep) -> None:
        """Deterministic exponential backoff before the given retry."""
        delay = self.delay_for(retry)
        if delay > 0:
            sleeper(delay)


class CircuitBreaker:
    """Consecutive-failure counter that opens after a threshold.

    The engine records one failure per broken pool; once the breaker
    opens, parallel fan-out is abandoned for the rest of the engine's
    life and every simulation runs serially (the always-correct path).

    Args:
        threshold: consecutive failures that open the circuit.
    """

    def __init__(self, threshold: int = 2) -> None:
        if threshold < 1:
            raise ReproError("breaker threshold must be at least 1")
        self.threshold = threshold
        self.failures = 0
        self.trips = 0

    @property
    def open(self) -> bool:
        """Whether the protected path should be bypassed."""
        return self.failures >= self.threshold

    def record_failure(self) -> None:
        """Count one failure; may open the circuit."""
        self.failures += 1
        if self.failures == self.threshold:
            self.trips += 1

    def record_success(self) -> None:
        """Reset the consecutive-failure count (circuit stays closed)."""
        if self.failures < self.threshold:
            self.failures = 0


# ----------------------------------------------------------------------
# Atomic, checksummed file writes
# ----------------------------------------------------------------------


def atomic_write_text(path: str, text: str) -> str:
    """Write ``text`` to ``path`` atomically: tmp file, fsync, rename.

    An interrupt mid-write can no longer truncate an existing file at
    ``path`` — either the old content survives untouched or the new
    content is fully in place.  Returns ``path``.
    """
    tmp_path = f"{path}.tmp"
    with open(tmp_path, "w", encoding="utf-8") as handle:
        handle.write(text)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp_path, path)
    return path


def content_checksum(text: str) -> str:
    """SHA-256 hex digest of a document body (checkpoint integrity)."""
    return hashlib.sha256(text.encode("utf-8")).hexdigest()
