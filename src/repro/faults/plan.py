"""Declarative, seed-driven fault plans for deterministic chaos runs.

A :class:`FaultPlan` is a frozen description of *which* failures strike
*where* and *how hard*: worker crashes and hangs inside the simulation
engine, measurement loss that leaves catchments partial, BGP collector
flaps, checkpoint corruption, volume-noise bursts on observed traffic,
and route-churn storms.  Every decision the plan drives is a pure
function of ``(plan.seed, site, tokens)`` — a SHA-256 digest mapped to
the unit interval — never of wall clock, PRNG state, or execution order,
so a chaos run is bit-reproducible: the same plan yields the same faults
at the same places on any machine, serial or parallel.

Plans are JSON round-trippable (``spooftrack --fault-plan plan.json``)
and a few named plans ship in :data:`BUNDLED_PLANS` for the chaos suite
and the ``spooftrack chaos`` sweep.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..errors import FaultInjectionError

#: Fault kinds understood by the injector.
WORKER_CRASH = "worker-crash"
WORKER_HANG = "worker-hang"
MEASUREMENT_LOSS = "measurement-loss"
COLLECTOR_FLAP = "collector-flap"
CHECKPOINT_CORRUPTION = "checkpoint-corruption"
VOLUME_NOISE = "volume-noise"
ROUTE_CHURN = "route-churn"

FAULT_KINDS = (
    WORKER_CRASH,
    WORKER_HANG,
    MEASUREMENT_LOSS,
    COLLECTOR_FLAP,
    CHECKPOINT_CORRUPTION,
    VOLUME_NOISE,
    ROUTE_CHURN,
)

#: Infrastructure faults the engine contains with byte-identical results
#: (retry + suppressed re-run): safe to escalate under a soak campaign
#: whose final digest must match an uninterrupted reference run.  The
#: observation faults (measurement loss, flaps, noise, churn) change
#: results — deterministically, but they change them.
INFRA_FAULT_KINDS = (WORKER_CRASH, WORKER_HANG)


def stable_unit(seed: int, *tokens) -> float:
    """Deterministic value in ``[0, 1)`` from a seed and tokens.

    Uses SHA-256, not :func:`hash`, so the value is identical across
    processes and interpreter runs (``PYTHONHASHSEED`` does not apply).
    """
    text = "|".join([str(seed), *(str(token) for token in tokens)])
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") / 2.0**64


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault.

    Attributes:
        kind: one of :data:`FAULT_KINDS`.
        rate: probability the fault fires per opportunity (per simulated
            configuration, per observation window, per checkpoint, …).
        intensity: kind-specific magnitude — fraction of catchment
            members lost (measurement-loss), fraction of vantages or
            traceroutes dropped (collector-flap / measurement-loss in
            measured mode), relative volume perturbation (volume-noise),
            or route drift (route-churn).
        delay_seconds: how long a ``worker-hang`` stalls the task.
        start: first opportunity index the spec is active at.
        stop: exclusive end of the active window (None = forever).
    """

    kind: str
    rate: float = 0.0
    intensity: float = 0.0
    delay_seconds: float = 0.0
    start: int = 0
    stop: Optional[int] = None

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise FaultInjectionError(
                f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}"
            )
        if not 0.0 <= self.rate <= 1.0:
            raise FaultInjectionError("fault rate must be in [0, 1]")
        if self.intensity < 0.0:
            raise FaultInjectionError("fault intensity cannot be negative")
        if self.delay_seconds < 0.0:
            raise FaultInjectionError("hang delay cannot be negative")
        if self.start < 0:
            raise FaultInjectionError("fault window start cannot be negative")
        if self.stop is not None and self.stop <= self.start:
            raise FaultInjectionError("fault window stop must exceed start")

    def active_at(self, index: int) -> bool:
        """Whether this spec covers opportunity ``index``."""
        if index < self.start:
            return False
        return self.stop is None or index < self.stop


@dataclass(frozen=True)
class FaultPlan:
    """A seeded schedule of faults.

    The empty plan (no specs) is the identity: an injector built over it
    never fires, and a run with it attached is byte-identical to a run
    with no injection layer at all.
    """

    name: str = ""
    seed: int = 0
    specs: Tuple[FaultSpec, ...] = ()

    @property
    def is_empty(self) -> bool:
        """True when no spec can ever fire."""
        return all(spec.rate == 0.0 for spec in self.specs)

    def specs_for(self, kind: str) -> List[Tuple[int, FaultSpec]]:
        """``(position, spec)`` pairs of the given kind, in plan order.

        The position indexes the *full* spec tuple, so digests stay
        stable when unrelated specs are added or removed around a spec.
        """
        return [
            (index, spec)
            for index, spec in enumerate(self.specs)
            if spec.kind == kind
        ]

    def decision(self, *tokens) -> float:
        """Deterministic unit-interval draw for one injection decision."""
        return stable_unit(self.seed, *tokens)

    def scaled(self, factor: float) -> "FaultPlan":
        """A copy with every rate multiplied by ``factor`` (clamped to 1).

        The ``spooftrack chaos`` sweep uses this to trace accuracy versus
        fault intensity without authoring one plan per level.
        """
        if factor < 0:
            raise FaultInjectionError("scale factor cannot be negative")
        specs = tuple(
            FaultSpec(
                kind=spec.kind,
                rate=min(1.0, spec.rate * factor),
                intensity=spec.intensity,
                delay_seconds=spec.delay_seconds,
                start=spec.start,
                stop=spec.stop,
            )
            for spec in self.specs
        )
        suffix = f"x{factor:g}"
        return FaultPlan(
            name=f"{self.name}{suffix}" if self.name else suffix,
            seed=self.seed,
            specs=specs,
        )

    def infra_only(self) -> "FaultPlan":
        """A copy keeping only :data:`INFRA_FAULT_KINDS` specs.

        The soak harness escalates faults every epoch while requiring
        the final fleet digest to match a fault-free reference run;
        restricting a plan to the result-preserving kinds makes any
        bundled plan safe to escalate.
        """
        specs = tuple(
            spec for spec in self.specs if spec.kind in INFRA_FAULT_KINDS
        )
        suffix = "-infra" if self.name else "infra"
        return FaultPlan(
            name=f"{self.name}{suffix}", seed=self.seed, specs=specs
        )

    # -- serialization --------------------------------------------------

    def as_serializable(self) -> Dict:
        """JSON-safe dump (inverse of :meth:`from_serializable`)."""
        return {
            "name": self.name,
            "seed": self.seed,
            "specs": [
                {
                    "kind": spec.kind,
                    "rate": spec.rate,
                    "intensity": spec.intensity,
                    "delay_seconds": spec.delay_seconds,
                    "start": spec.start,
                    "stop": spec.stop,
                }
                for spec in self.specs
            ],
        }

    @classmethod
    def from_serializable(cls, payload: Dict) -> "FaultPlan":
        """Rebuild a plan dumped by :meth:`as_serializable`.

        Raises:
            FaultInjectionError: on a malformed document.
        """
        try:
            specs = tuple(
                FaultSpec(
                    kind=entry["kind"],
                    rate=float(entry.get("rate", 0.0)),
                    intensity=float(entry.get("intensity", 0.0)),
                    delay_seconds=float(entry.get("delay_seconds", 0.0)),
                    start=int(entry.get("start", 0)),
                    stop=entry.get("stop"),
                )
                for entry in payload.get("specs", ())
            )
            return cls(
                name=str(payload.get("name", "")),
                seed=int(payload.get("seed", 0)),
                specs=specs,
            )
        except FaultInjectionError:
            raise
        except (KeyError, TypeError, ValueError) as exc:
            raise FaultInjectionError(f"malformed fault plan: {exc}")


#: Named plans bundled for the chaos suite and ``spooftrack chaos``.
BUNDLED_PLANS: Dict[str, FaultPlan] = {
    "worker-crash": FaultPlan(
        name="worker-crash",
        specs=(
            FaultSpec(kind=WORKER_CRASH, rate=0.3),
            FaultSpec(kind=WORKER_HANG, rate=0.1, delay_seconds=0.005),
        ),
    ),
    "partial-measurement": FaultPlan(
        name="partial-measurement",
        specs=(
            FaultSpec(kind=MEASUREMENT_LOSS, rate=0.4, intensity=0.3),
            FaultSpec(kind=COLLECTOR_FLAP, rate=0.3, intensity=0.4),
        ),
    ),
    "checkpoint-corruption": FaultPlan(
        name="checkpoint-corruption",
        specs=(FaultSpec(kind=CHECKPOINT_CORRUPTION, rate=0.5),),
    ),
    "volume-noise": FaultPlan(
        name="volume-noise",
        specs=(FaultSpec(kind=VOLUME_NOISE, rate=0.5, intensity=0.5),),
    ),
    "route-churn": FaultPlan(
        name="route-churn",
        specs=(FaultSpec(kind=ROUTE_CHURN, rate=0.1, intensity=0.2, start=2),),
    ),
    "soak-infra": FaultPlan(
        name="soak-infra",
        specs=(
            FaultSpec(kind=WORKER_CRASH, rate=0.1),
            FaultSpec(kind=WORKER_HANG, rate=0.05, delay_seconds=0.002),
        ),
    ),
    "mixed": FaultPlan(
        name="mixed",
        specs=(
            FaultSpec(kind=WORKER_CRASH, rate=0.15),
            FaultSpec(kind=WORKER_HANG, rate=0.05, delay_seconds=0.005),
            FaultSpec(kind=MEASUREMENT_LOSS, rate=0.2, intensity=0.2),
            FaultSpec(kind=COLLECTOR_FLAP, rate=0.15, intensity=0.3),
            FaultSpec(kind=VOLUME_NOISE, rate=0.25, intensity=0.3),
            FaultSpec(kind=ROUTE_CHURN, rate=0.05, intensity=0.15, start=2),
            FaultSpec(kind=CHECKPOINT_CORRUPTION, rate=0.25),
        ),
    ),
}


def escalation_curve(
    epochs: int, base: float = 0.5, growth: float = 0.5
) -> Tuple[float, ...]:
    """Per-epoch fault scale factors for a soak campaign.

    Epoch ``i`` runs the plan scaled by ``base + growth * i`` — a linear
    ramp from gentle to hostile, applied with :meth:`FaultPlan.scaled`
    (which clamps rates to 1, so the curve saturates instead of
    overflowing).
    """
    if epochs < 0:
        raise FaultInjectionError("escalation needs a non-negative epoch count")
    if base < 0 or growth < 0:
        raise FaultInjectionError("escalation factors cannot be negative")
    return tuple(base + growth * epoch for epoch in range(epochs))


def load_fault_plan(source: str) -> FaultPlan:
    """Resolve a plan from a bundled name or a JSON file path.

    Raises:
        FaultInjectionError: when the name is unknown and the path does
            not exist or does not parse.
    """
    if source in BUNDLED_PLANS:
        return BUNDLED_PLANS[source]
    if os.path.exists(source):
        try:
            with open(source, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, json.JSONDecodeError) as exc:
            raise FaultInjectionError(f"cannot read fault plan {source!r}: {exc}")
        return FaultPlan.from_serializable(payload)
    raise FaultInjectionError(
        f"unknown fault plan {source!r}: not a bundled name "
        f"({sorted(BUNDLED_PLANS)}) and no such file"
    )
