"""Public BGP feed emulation (RouteViews / RIPE RIS).

Route collectors peer with a few hundred ASes — disproportionately large
transit networks — and archive the AS-paths those peers export.  The paper
uses all public feeds from RouteViews and RIPE RIS both to measure
catchments directly and to backfill traceroute gaps (§IV-b).

:class:`BGPCollectorSet` observes a :class:`~repro.bgp.simulator.RoutingOutcome`
from a fixed set of vantage ASes and reports the control-plane AS-paths
exactly as a collector would see them: vantage-first, with prepending
repetitions and poison stuffing intact.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Optional, Sequence

from ..bgp.simulator import RoutingOutcome
from ..errors import MeasurementError
from ..topology.graph import ASGraph
from ..topology.peering import OriginNetwork
from ..types import ASN, ASPath, LinkId


def select_vantages(
    graph: ASGraph,
    count: int,
    seed: int = 0,
    exclude: Iterable[ASN] = (),
    degree_bias: float = 0.7,
) -> List[ASN]:
    """Choose collector vantage ASes, biased toward high-degree networks.

    A ``degree_bias`` fraction of vantages is taken from the highest-degree
    ASes (mirroring tier-1/large-transit collector peers); the remainder is
    sampled uniformly from what is left.

    Raises:
        MeasurementError: when the graph has fewer eligible ASes than
            ``count``.
    """
    if not 0.0 <= degree_bias <= 1.0:
        raise MeasurementError("degree_bias must be in [0, 1]")
    excluded = set(exclude)
    eligible = sorted(asn for asn in graph.ases if asn not in excluded)
    if count > len(eligible):
        raise MeasurementError(
            f"requested {count} vantages but only {len(eligible)} eligible ASes"
        )
    by_degree = sorted(eligible, key=lambda asn: (-graph.degree(asn), asn))
    top_count = round(count * degree_bias)
    vantages = by_degree[:top_count]
    remainder = [asn for asn in eligible if asn not in set(vantages)]
    rng = random.Random(seed)
    vantages.extend(rng.sample(remainder, count - len(vantages)))
    return sorted(vantages)


class BGPCollectorSet:
    """A fixed set of feed vantage points.

    Args:
        vantages: ASes exporting their best path to the collectors.
        origin: the origin network (needed to attribute paths to links).
    """

    def __init__(self, vantages: Sequence[ASN], origin: OriginNetwork) -> None:
        if not vantages:
            raise MeasurementError("collector set needs at least one vantage")
        if len(set(vantages)) != len(vantages):
            raise MeasurementError("duplicate vantage ASes")
        self.vantages = sorted(vantages)
        self.origin = origin

    def observe(self, outcome: RoutingOutcome) -> Dict[ASN, ASPath]:
        """AS-paths exported by each vantage under ``outcome``.

        Vantages with no route are absent (a collector simply sees no
        announcement from them).
        """
        observations: Dict[ASN, ASPath] = {}
        for vantage in self.vantages:
            route = outcome.route(vantage)
            if route is not None:
                observations[vantage] = (vantage,) + route.as_path
        return observations

    def observed_paths(self, outcome: RoutingOutcome) -> List[ASPath]:
        """All observed paths (for BGP-bracketing traceroute repair)."""
        return list(self.observe(outcome).values())


def link_of_bgp_path(origin: OriginNetwork, path: ASPath) -> Optional[LinkId]:
    """Attribute a collector-observed AS-path to an origin peering link.

    The link is identified by the AS immediately preceding the first
    occurrence of the origin ASN — the directly-connected provider the
    announcement entered the Internet through.  Returns None for paths
    that do not contain the origin or whose preceding AS is not one of the
    origin's providers (e.g. badly repaired paths).
    """
    try:
        index = path.index(origin.asn)
    except ValueError:
        return None
    if index == 0:
        return None
    provider = path[index - 1]
    for link in origin.links:
        if link.provider == provider:
            return link.link_id
    return None
