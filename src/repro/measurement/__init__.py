"""Catchment measurement substrate: feeds, traceroutes, mapping, resolution."""

from .atlas import AtlasProbeFleet, MeasurementRound, select_probe_ases
from .campaign import ConfigMeasurement, MeasurementCampaign
from .catchment import (
    KIND_BGP,
    KIND_TRACEROUTE,
    CatchmentHistory,
    CatchmentObservation,
    ResolutionStats,
    assignment_to_catchments,
    resolve_observations,
)
from .collectors import BGPCollectorSet, link_of_bgp_path, select_vantages
from .ip2as import AddressPlan, IPToASMapper, ORIGIN_PREFIX, PrefixTrie
from .ixp import IXP, IXPRegistry, synthesize_ixps
from .repair import (
    as_path_from_traceroute,
    build_bgp_segment_index,
    build_gap_index,
    map_hops_to_ases,
    repair_ip_gaps,
    resolve_as_gaps,
)
from .traceroute import Traceroute, TracerouteEngine, TracerouteParams
from .verfploeter import VerfploeterParams, VerfploeterProber

__all__ = [
    "AddressPlan",
    "IPToASMapper",
    "PrefixTrie",
    "ORIGIN_PREFIX",
    "IXP",
    "IXPRegistry",
    "synthesize_ixps",
    "Traceroute",
    "TracerouteEngine",
    "TracerouteParams",
    "repair_ip_gaps",
    "map_hops_to_ases",
    "resolve_as_gaps",
    "as_path_from_traceroute",
    "build_gap_index",
    "build_bgp_segment_index",
    "BGPCollectorSet",
    "select_vantages",
    "link_of_bgp_path",
    "AtlasProbeFleet",
    "MeasurementRound",
    "select_probe_ases",
    "CatchmentObservation",
    "CatchmentHistory",
    "ResolutionStats",
    "resolve_observations",
    "assignment_to_catchments",
    "KIND_BGP",
    "KIND_TRACEROUTE",
    "MeasurementCampaign",
    "ConfigMeasurement",
    "VerfploeterProber",
    "VerfploeterParams",
]
