"""Verfploeter-style active catchment measurement (paper §I, citing [11]).

The paper's first suggestion for catchment mapping: "sending out pings and
measuring which link replies arrive at" (de Vries et al., *Verfploeter*).
The anycast origin pings addresses across the Internet *from* the anycast
prefix; each reply is routed back toward the prefix and therefore ingresses
on the link whose catchment contains the reply's source — one probe, one
direct catchment observation, no inference.

Compared to the passive feed/traceroute pipeline, Verfploeter achieves far
higher coverage (every ping-responsive AS) with no AS-path parsing, at the
cost of requiring the origin to source Internet-wide probe traffic —
which is exactly why the paper could not run it from PEERING (§IV-b notes
the platform's concerns about Internet-wide scans).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Dict, Optional

from ..bgp.simulator import RoutingOutcome
from ..errors import MeasurementError
from ..topology.graph import ASGraph
from ..types import ASN, LinkId


@dataclass(frozen=True)
class VerfploeterParams:
    """Knobs for the active prober.

    Attributes:
        responsiveness: fraction of ASes hosting at least one
            ping-responsive address (ICMP studies put this around 0.6–0.8).
        seed: drives the deterministic per-AS responsiveness assignment.
    """

    responsiveness: float = 0.7
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.responsiveness <= 1.0:
            raise MeasurementError("responsiveness must be in [0, 1]")


class VerfploeterProber:
    """Active anycast catchment mapper.

    Args:
        graph: the topology (to enumerate probe targets).
        origin: ASN of the anycast origin (never probes itself).
        params: responsiveness model.
    """

    def __init__(
        self,
        graph: ASGraph,
        origin_asn: ASN,
        params: Optional[VerfploeterParams] = None,
    ) -> None:
        self.graph = graph
        self.origin_asn = origin_asn
        self.params = params or VerfploeterParams()

    def is_responsive(self, asn: ASN) -> bool:
        """Deterministic: does ``asn`` answer pings at all?"""
        digest = zlib.crc32(f"verfploeter|{asn}|{self.params.seed}".encode())
        return (digest % 10_000) / 10_000.0 < self.params.responsiveness

    def measure(self, outcome: RoutingOutcome) -> Dict[ASN, LinkId]:
        """Ping sweep under ``outcome``: source AS → ingress link of reply.

        An AS appears iff it is ping-responsive *and* currently holds a
        route to the prefix (otherwise its reply never arrives).  The
        observed link is exact — replies follow the reply's own best
        route, which is precisely the catchment definition.
        """
        assignment: Dict[ASN, LinkId] = {}
        for asn, route in outcome.routes.items():
            if asn == self.origin_asn:
                continue
            if self.is_responsive(asn):
                assignment[asn] = route.link_id
        return assignment

    def coverage(self, outcome: RoutingOutcome) -> float:
        """Fraction of routed ASes the sweep observes."""
        routed = [asn for asn in outcome.routes if asn != self.origin_asn]
        if not routed:
            return 0.0
        return sum(1 for asn in routed if self.is_responsive(asn)) / len(routed)
