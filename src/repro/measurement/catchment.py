"""Catchment estimation from BGP and traceroute observations (§IV-c, §IV-d).

Measured catchments disagree with ground truth in three ways the paper
handles explicitly, all reproduced here:

* **Multiple catchments** — an AS can be observed in more than one
  catchment within a configuration (IP-to-AS errors, intra-AS routing
  diversity).  Resolution gives priority to BGP observations over
  traceroute, then takes the most common assignment (§IV-c).
* **Visibility** — a source observed under some configurations may be
  missing under others.  Analysis is limited to sources observed under
  the initial anycast-all configuration, and missing assignments are
  imputed from ``smax``, the source whose catchment the missing source
  shares most often (§IV-d).
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Set, Tuple

from ..errors import MeasurementError
from ..types import ASN, LinkId

KIND_BGP = "bgp"
KIND_TRACEROUTE = "traceroute"


@dataclass(frozen=True)
class CatchmentObservation:
    """One (source AS → peering link) observation with its provenance."""

    source_as: ASN
    link: LinkId
    kind: str

    def __post_init__(self) -> None:
        if self.kind not in (KIND_BGP, KIND_TRACEROUTE):
            raise MeasurementError(f"unknown observation kind {self.kind!r}")


@dataclass
class ResolutionStats:
    """Bookkeeping from one configuration's conflict resolution.

    Attributes:
        sources_observed: distinct sources with at least one observation.
        sources_in_multiple_catchments: sources seen on more than one link
            (the paper reports 2.28% on average).
    """

    sources_observed: int = 0
    sources_in_multiple_catchments: int = 0

    @property
    def multi_catchment_fraction(self) -> float:
        """Fraction of observed sources seen in multiple catchments."""
        if not self.sources_observed:
            return 0.0
        return self.sources_in_multiple_catchments / self.sources_observed


def resolve_observations(
    observations: Iterable[CatchmentObservation],
) -> Tuple[Dict[ASN, LinkId], ResolutionStats]:
    """Resolve per-source conflicts into a single catchment assignment.

    BGP observations outrank traceroute ones ("we give higher priority to
    BGP measurements to minimize errors due to IP-to-AS mapping"); among
    observations of the same type, the most common link wins, with ties
    broken by link id for determinism.
    """
    by_source: Dict[ASN, Dict[str, Counter]] = defaultdict(
        lambda: {KIND_BGP: Counter(), KIND_TRACEROUTE: Counter()}
    )
    for obs in observations:
        by_source[obs.source_as][obs.kind][obs.link] += 1

    assignment: Dict[ASN, LinkId] = {}
    stats = ResolutionStats()
    for source, counters in by_source.items():
        stats.sources_observed += 1
        links_seen = set(counters[KIND_BGP]) | set(counters[KIND_TRACEROUTE])
        if len(links_seen) > 1:
            stats.sources_in_multiple_catchments += 1
        preferred = counters[KIND_BGP] or counters[KIND_TRACEROUTE]
        best_link = min(
            preferred.items(), key=lambda item: (-item[1], item[0])
        )[0]
        assignment[source] = best_link
    return assignment, stats


def assignment_to_catchments(
    assignment: Mapping[ASN, LinkId], links: Iterable[LinkId]
) -> Dict[LinkId, FrozenSet[ASN]]:
    """Invert a source→link assignment into per-link catchment sets."""
    catchments: Dict[LinkId, Set[ASN]] = {link: set() for link in links}
    for source, link in assignment.items():
        catchments.setdefault(link, set()).add(source)
    return {link: frozenset(members) for link, members in catchments.items()}


class CatchmentHistory:
    """Per-configuration catchment assignments with smax imputation.

    Args:
        universe: the analysis universe — the paper fixes it to the
            sources observed under the first anycast-all configuration.
    """

    def __init__(self, universe: Iterable[ASN]) -> None:
        self.universe: FrozenSet[ASN] = frozenset(universe)
        if not self.universe:
            raise MeasurementError("catchment history needs a non-empty universe")
        self._assignments: List[Dict[ASN, LinkId]] = []

    def add(self, assignment: Mapping[ASN, LinkId]) -> None:
        """Record one configuration's assignment (restricted to the universe)."""
        self._assignments.append(
            {
                source: link
                for source, link in assignment.items()
                if source in self.universe
            }
        )

    def __len__(self) -> int:
        return len(self._assignments)

    def missing_sources(self) -> Dict[int, FrozenSet[ASN]]:
        """Per configuration index, universe sources with no assignment."""
        return {
            index: frozenset(self.universe - set(assignment))
            for index, assignment in enumerate(self._assignments)
            if self.universe - set(assignment)
        }

    def smax_of(self, source: ASN) -> Optional[ASN]:
        """The source most frequently sharing a catchment with ``source``.

        Computed across configurations where ``source`` was observed; ties
        break toward the smallest ASN.  Returns None if ``source`` shares
        no catchment with anyone anywhere.
        """
        counts: Counter = Counter()
        for assignment in self._assignments:
            link = assignment.get(source)
            if link is None:
                continue
            for other, other_link in assignment.items():
                if other != source and other_link == link:
                    counts[other] += 1
        if not counts:
            return None
        return min(counts.items(), key=lambda item: (-item[1], item[0]))[0]

    def imputed_assignments(self) -> List[Dict[ASN, LinkId]]:
        """Assignments with missing sources imputed via smax (§IV-d).

        For each configuration where a source is missing, it inherits the
        catchment of its smax (when the smax itself was observed there).
        Sources whose smax is also missing stay unassigned for that
        configuration — refinement simply learns nothing about them.
        """
        smax_cache: Dict[ASN, Optional[ASN]] = {}
        completed: List[Dict[ASN, LinkId]] = []
        for assignment in self._assignments:
            filled = dict(assignment)
            for source in self.universe - set(assignment):
                if source not in smax_cache:
                    smax_cache[source] = self.smax_of(source)
                smax = smax_cache[source]
                if smax is not None and smax in assignment:
                    filled[source] = assignment[smax]
            completed.append(filled)
        return completed

    def catchment_maps(
        self, links: Iterable[LinkId], imputed: bool = True
    ) -> List[Dict[LinkId, FrozenSet[ASN]]]:
        """Per-configuration catchment maps, optionally smax-imputed."""
        link_list = list(links)
        assignments = (
            self.imputed_assignments() if imputed else self._assignments
        )
        return [
            assignment_to_catchments(assignment, link_list)
            for assignment in assignments
        ]
