"""IP-to-AS mapping: longest-prefix-match trie and synthetic address plan.

The paper maps traceroute hops to ASes with Team Cymru's IP-to-ASN data
plus PeeringDB IXP prefixes (§IV-b).  Offline, the equivalent is an
:class:`AddressPlan` that deterministically assigns every AS in the
topology an address block (and the origin its announced prefix), plus a
:class:`PrefixTrie` implementing longest-prefix match over those blocks.
"""

from __future__ import annotations

import random
from typing import Dict, Generic, Iterable, List, Mapping, Optional, Tuple, TypeVar

from ..errors import MappingError
from ..types import ASN, Prefix

V = TypeVar("V")


class PrefixTrie(Generic[V]):
    """Binary trie over IPv4 prefixes with longest-prefix-match lookup."""

    __slots__ = ("_root", "_size")

    def __init__(self) -> None:
        self._root: list = [None, None, None]  # [zero-child, one-child, value]
        self._size = 0

    def insert(self, prefix: Prefix, value: V) -> None:
        """Insert ``prefix`` → ``value``.

        Raises:
            MappingError: if the exact prefix is already present with a
                different value.
        """
        node = self._root
        for bit_index in range(prefix.length):
            bit = (prefix.network >> (31 - bit_index)) & 1
            if node[bit] is None:
                node[bit] = [None, None, None]
            node = node[bit]
        if node[2] is not None and node[2] != value:
            raise MappingError(
                f"prefix {prefix} already mapped to {node[2]!r}, refusing {value!r}"
            )
        if node[2] is None:
            self._size += 1
        node[2] = value

    def lookup(self, address: int) -> Optional[V]:
        """Longest-prefix-match lookup; None when nothing covers ``address``."""
        node = self._root
        best: Optional[V] = node[2]
        for bit_index in range(32):
            bit = (address >> (31 - bit_index)) & 1
            node = node[bit]
            if node is None:
                break
            if node[2] is not None:
                best = node[2]
        return best

    def lookup_prefix(self, address: int) -> Optional[Tuple[Prefix, V]]:
        """Like :meth:`lookup` but also returns the matching prefix."""
        node = self._root
        best: Optional[Tuple[Prefix, V]] = None
        matched_network = 0
        for bit_index in range(33):
            if node[2] is not None:
                best = (Prefix(matched_network, bit_index), node[2])
            if bit_index == 32:
                break
            bit = (address >> (31 - bit_index)) & 1
            child = node[bit]
            if child is None:
                break
            matched_network |= bit << (31 - bit_index)
            node = child
        return best

    def __len__(self) -> int:
        return self._size


#: Base of the per-AS /16 allocation: 16.0.0.0 onward.
AS_BLOCK_BASE = 16 << 24
#: The origin announces PEERING's real experiment prefix.
ORIGIN_PREFIX = Prefix.parse("184.164.224.0/24")
#: Base of synthetic IXP peering-LAN /24s.
IXP_BLOCK_BASE = 206 << 24


class AddressPlan:
    """Deterministic address assignment for a topology.

    Every AS receives one /16 from a sequential pool; the origin AS
    additionally owns the announced /24.  Router interface addresses are
    derived arithmetically so traceroute output is reproducible.

    Args:
        ases: all ASes needing address space (origin included).
        origin_asn: the AS announcing :data:`ORIGIN_PREFIX`.
    """

    def __init__(self, ases: Iterable[ASN], origin_asn: ASN) -> None:
        ordered = sorted(set(ases) | {origin_asn})
        if len(ordered) * 0x10000 + AS_BLOCK_BASE >= IXP_BLOCK_BASE:
            raise MappingError(
                f"{len(ordered)} ASes exceed the synthetic /16 pool"
            )
        self.origin_asn = origin_asn
        self._block_of: Dict[ASN, Prefix] = {
            asn: Prefix(AS_BLOCK_BASE + index * 0x10000, 16)
            for index, asn in enumerate(ordered)
        }
        self.announced_prefix = ORIGIN_PREFIX

    @property
    def ases(self) -> List[ASN]:
        """All ASes with an assigned block."""
        return sorted(self._block_of)

    def block_of(self, asn: ASN) -> Prefix:
        """The /16 owned by ``asn``.

        Raises:
            MappingError: for ASes outside the plan.
        """
        try:
            return self._block_of[asn]
        except KeyError:
            raise MappingError(f"AS {asn} has no address block") from None

    def router_address(self, asn: ASN, router_index: int) -> int:
        """Deterministic interface address of router ``router_index`` in ``asn``."""
        block = self.block_of(asn)
        if not 0 <= router_index < block.num_addresses - 2:
            raise MappingError(
                f"router index {router_index} outside block {block} of AS {asn}"
            )
        return block.network + 1 + router_index

    def random_address_in(self, asn: ASN, rng: random.Random) -> int:
        """Uniform random address inside ``asn``'s block."""
        block = self.block_of(asn)
        return block.network + rng.randrange(block.num_addresses)

    def target_address(self) -> int:
        """An address inside the announced prefix (the traceroute target)."""
        return self.announced_prefix.network + 1


class IPToASMapper:
    """Team-Cymru-style IP→AS mapping built from an address plan.

    The mapper is *authoritative for allocations*, not for who answers
    from an address: border interfaces numbered out of a neighbor's block
    (see :class:`repro.measurement.traceroute.TracerouteEngine`) are
    exactly the real-world error this data source carries into AS-path
    inference.

    Args:
        plan: the address plan to index.
        ixp_prefixes: optional IXP peering-LAN prefixes mapped to None
            (IXP addresses belong to no member AS); see
            :mod:`repro.measurement.ixp`.
    """

    #: Sentinel value stored for IXP prefixes.
    IXP = "IXP"

    def __init__(
        self,
        plan: AddressPlan,
        ixp_prefixes: Iterable[Prefix] = (),
    ) -> None:
        self.plan = plan
        self._trie: PrefixTrie = PrefixTrie()
        for asn in plan.ases:
            self._trie.insert(plan.block_of(asn), asn)
        self._trie.insert(plan.announced_prefix, plan.origin_asn)
        for prefix in ixp_prefixes:
            self._trie.insert(prefix, self.IXP)

    def map_address(self, address: int) -> Optional[ASN]:
        """AS owning ``address``; None for unmapped or IXP space."""
        value = self._trie.lookup(address)
        if value == self.IXP:
            return None
        return value

    def is_ixp_address(self, address: int) -> bool:
        """True if ``address`` falls in registered IXP space."""
        return self._trie.lookup(address) == self.IXP
