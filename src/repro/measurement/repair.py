"""Traceroute repair and AS-path inference (paper §IV-b).

The paper's pipeline, reproduced verbatim:

1. *IP-level gap repair* — if consecutive unresponsive hops are surrounded
   by responsive ones, and the surrounding addresses have a single
   distinct sequence of responsive hops between them in other traceroutes,
   substitute that sequence.
2. *Single-AS bracketing* — map hops to ASes; unresponsive runs whose
   surrounding responsive hops map to the same AS are assigned that AS.
3. *BGP bracketing* — if the surrounding hops map to different ASes,
   substitute the gap with the unique AS sequence observed between those
   ASes in public BGP feeds, when unique.
4. Remaining unmapped or unresponsive hops are dropped from the AS-level
   path.

IXP peering-LAN hops are recognized via the mapper and dropped (they
belong to the exchange, not a member AS).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from ..types import ASN, ASPath, path_without_prepending
from .ip2as import IPToASMapper
from .traceroute import Traceroute

#: Marker for hops that are unresponsive or unmapped at the AS level.
UNKNOWN = None

#: Explicit reasons a traceroute contributes no AS path.  A dropped
#: traceroute is lossy evidence, not an error: callers account it and
#: continue with the remaining measurements.
DROP_EMPTY = "empty"
DROP_ALL_UNRESPONSIVE = "all-unresponsive"
DROP_ALL_UNMAPPED = "all-unmapped"


def build_gap_index(
    traceroutes: Iterable[Traceroute],
) -> Dict[Tuple[int, int], Set[Tuple[int, ...]]]:
    """Index fully-responsive inter-address segments across traceroutes.

    For every pair of responsive addresses ``(a, b)`` appearing in some
    traceroute with only responsive hops between them, record the hop
    sequence strictly between ``a`` and ``b``.  Step 1 of the repair uses
    this to fill unresponsive gaps bracketed by ``a`` and ``b``.
    """
    index: Dict[Tuple[int, int], Set[Tuple[int, ...]]] = defaultdict(set)
    for trace in traceroutes:
        hops = trace.hops
        for i, first in enumerate(hops):
            if first is None:
                continue
            segment: List[int] = []
            for j in range(i + 1, len(hops)):
                hop = hops[j]
                if hop is None:
                    break
                index[(first, hop)].add(tuple(segment))
                segment.append(hop)
    return dict(index)


def repair_ip_gaps(
    trace: Traceroute,
    gap_index: Mapping[Tuple[int, int], Set[Tuple[int, ...]]],
) -> Traceroute:
    """Step 1: fill unresponsive runs using unique segments from other traces."""
    hops = list(trace.hops)
    repaired: List[Optional[int]] = []
    i = 0
    while i < len(hops):
        hop = hops[i]
        if hop is not None or not repaired or repaired[-1] is None:
            repaired.append(hop)
            i += 1
            continue
        # A run of None starting at i, preceded by a responsive hop.
        j = i
        while j < len(hops) and hops[j] is None:
            j += 1
        if j >= len(hops):
            repaired.extend(hops[i:])
            break
        before, after = repaired[-1], hops[j]
        candidates = gap_index.get((before, after), set())
        # Only substitutions of matching length are plausible repairs.
        plausible = {seg for seg in candidates if len(seg) == j - i}
        if len(plausible) == 1:
            repaired.extend(next(iter(plausible)))
        else:
            repaired.extend(hops[i:j])
        i = j
    return Traceroute(
        probe_as=trace.probe_as,
        target=trace.target,
        hops=tuple(repaired),
        reached_target=trace.reached_target,
    )


def map_hops_to_ases(
    trace: Traceroute, mapper: IPToASMapper
) -> List[Optional[ASN]]:
    """Map each hop to an AS; IXP and unmapped hops become UNKNOWN."""
    mapped: List[Optional[ASN]] = []
    for hop in trace.hops:
        if hop is None:
            mapped.append(UNKNOWN)
        elif mapper.is_ixp_address(hop):
            mapped.append(UNKNOWN)
        else:
            mapped.append(mapper.map_address(hop))
    return mapped


def build_bgp_segment_index(
    bgp_paths: Iterable[ASPath],
) -> Dict[Tuple[ASN, ASN], Set[Tuple[ASN, ...]]]:
    """Index AS sequences strictly between AS pairs on public BGP paths.

    Prepending repetitions are collapsed first; every ordered pair of ASes
    on a path contributes the segment between them.  Step 3 of the repair
    queries this index.
    """
    index: Dict[Tuple[ASN, ASN], Set[Tuple[ASN, ...]]] = defaultdict(set)
    for path in bgp_paths:
        collapsed = path_without_prepending(path)
        for i, first in enumerate(collapsed):
            for j in range(i + 1, len(collapsed)):
                index[(first, collapsed[j])].add(tuple(collapsed[i + 1 : j]))
    return dict(index)


def resolve_as_gaps(
    mapped: Sequence[Optional[ASN]],
    bgp_segments: Optional[Mapping[Tuple[ASN, ASN], Set[Tuple[ASN, ...]]]] = None,
) -> List[Optional[ASN]]:
    """Steps 2 and 3: resolve UNKNOWN runs bracketed by known ASes."""
    resolved: List[Optional[ASN]] = list(mapped)
    i = 0
    while i < len(resolved):
        if resolved[i] is not UNKNOWN:
            i += 1
            continue
        j = i
        while j < len(resolved) and resolved[j] is UNKNOWN:
            j += 1
        before = resolved[i - 1] if i > 0 else None
        after = resolved[j] if j < len(resolved) else None
        if before is not None and after is not None:
            if before == after:
                for k in range(i, j):
                    resolved[k] = before
            elif bgp_segments is not None:
                candidates = bgp_segments.get((before, after), set())
                nonempty = {seg for seg in candidates if seg}
                if len(nonempty) == 1:
                    replacement = list(next(iter(nonempty)))
                    resolved[i:j] = replacement
                    j = i + len(replacement)
        i = j
    return resolved


def as_path_with_reason(
    trace: Traceroute,
    mapper: IPToASMapper,
    gap_index: Optional[Mapping[Tuple[int, int], Set[Tuple[int, ...]]]] = None,
    bgp_segments: Optional[Mapping[Tuple[ASN, ASN], Set[Tuple[ASN, ...]]]] = None,
) -> Tuple[ASPath, Optional[str]]:
    """Full pipeline, plus an explicit reason when no path survives.

    Returns ``(path, None)`` on success, or ``((), reason)`` when the
    traceroute yields no usable AS-level path: :data:`DROP_EMPTY` (no
    hops at all), :data:`DROP_ALL_UNRESPONSIVE` (every hop timed out),
    or :data:`DROP_ALL_UNMAPPED` (responsive hops exist, but none maps
    to an AS after repair).  Degenerate traceroutes are thereby dropped
    with attribution instead of silently contributing an empty path.
    """
    if not trace.hops:
        return (), DROP_EMPTY
    if all(hop is None for hop in trace.hops):
        return (), DROP_ALL_UNRESPONSIVE
    if gap_index is not None:
        trace = repair_ip_gaps(trace, gap_index)
    mapped = map_hops_to_ases(trace, mapper)
    resolved = resolve_as_gaps(mapped, bgp_segments)
    path: List[ASN] = []
    for asn in resolved:
        if asn is UNKNOWN:
            continue
        if not path or path[-1] != asn:
            path.append(asn)
    if not path:
        return (), DROP_ALL_UNMAPPED
    return tuple(path), None


def as_path_from_traceroute(
    trace: Traceroute,
    mapper: IPToASMapper,
    gap_index: Optional[Mapping[Tuple[int, int], Set[Tuple[int, ...]]]] = None,
    bgp_segments: Optional[Mapping[Tuple[ASN, ASN], Set[Tuple[ASN, ...]]]] = None,
) -> ASPath:
    """Full pipeline: repaired, gap-resolved, deduplicated AS-level path.

    Remaining UNKNOWN hops are dropped (paper: "we ignore those hops on
    the AS-level path").  Consecutive duplicates collapse to one AS.
    Degenerate traceroutes yield ``()``; use :func:`as_path_with_reason`
    to learn why.
    """
    path, _ = as_path_with_reason(trace, mapper, gap_index, bgp_segments)
    return path
