"""Router-level traceroute simulation toward the announced prefix.

The paper's catchment measurements combine BGP feeds with traceroutes
issued from RIPE Atlas probes (§IV-b).  This engine produces traceroute
output with the artifacts that make the paper's repair pipeline
(:mod:`repro.measurement.repair`) necessary:

* multiple routers per AS,
* unresponsive hops (``*``),
* hops on IXP peering LANs (addresses belonging to no member AS),
* border interfaces numbered from the upstream neighbor's address space,
* occasional bogus paths (probe misattribution / stale routes), and
* truncated measurements that never reach the target.

All randomness is derived from ``(seed, probe AS, round)`` so a
measurement is reproducible regardless of call order.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..bgp.simulator import RoutingOutcome
from ..errors import MeasurementError, SimulationError
from ..topology.graph import ASGraph
from ..types import ASN, ASPath
from .ip2as import AddressPlan
from .ixp import IXPRegistry


@dataclass(frozen=True)
class Traceroute:
    """One traceroute measurement.

    Attributes:
        probe_as: AS hosting the probe.
        target: destination address (inside the announced prefix).
        hops: per-hop responding address, None for unresponsive hops.
        reached_target: whether the last hop is the target.
    """

    probe_as: ASN
    target: int
    hops: Tuple[Optional[int], ...]
    reached_target: bool

    @property
    def responsive_hops(self) -> Tuple[int, ...]:
        """Addresses of hops that responded."""
        return tuple(hop for hop in self.hops if hop is not None)


@dataclass(frozen=True)
class TracerouteParams:
    """Artifact rates for the traceroute engine.

    Attributes:
        max_routers_per_as: internal router chain length is
            1 + (stable hash % this) per AS.
        unresponsive_rate: per-hop probability of no reply.
        border_sharing_rate: probability the entry interface into an AS is
            numbered from the previous AS's space (real-world IP-to-AS
            error source).
        path_error_rate: probability the probe measures a neighbor's path
            instead of its own (probe misattribution).
        truncation_rate: probability the measurement dies before the
            target.
        divergence_rate: probability a traceroute diverges from the
            AS-level best path at an intermediate AS — "different routers
            within an AS may choose different routes" (paper §IV-c).  This
            is the mechanism that puts an AS in multiple catchments.
        seed: base seed for per-measurement PRNGs.
    """

    max_routers_per_as: int = 2
    unresponsive_rate: float = 0.08
    border_sharing_rate: float = 0.15
    path_error_rate: float = 0.01
    truncation_rate: float = 0.03
    divergence_rate: float = 0.02
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_routers_per_as < 1:
            raise MeasurementError("max_routers_per_as must be at least 1")
        for name in (
            "unresponsive_rate",
            "border_sharing_rate",
            "path_error_rate",
            "truncation_rate",
            "divergence_rate",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise MeasurementError(f"{name} must be in [0, 1], got {value}")


class TracerouteEngine:
    """Simulates traceroutes along a routing outcome's forwarding paths."""

    def __init__(
        self,
        graph: ASGraph,
        plan: AddressPlan,
        ixps: Optional[IXPRegistry] = None,
        params: Optional[TracerouteParams] = None,
    ) -> None:
        self.graph = graph
        self.plan = plan
        self.ixps = ixps or IXPRegistry()
        self.params = params or TracerouteParams()

    def _routers_in(self, asn: ASN) -> int:
        digest = zlib.crc32(f"routers|{asn}|{self.params.seed}".encode("ascii"))
        return 1 + digest % self.params.max_routers_per_as

    def _rng_for(self, probe_as: ASN, round_index: int, config_key: str) -> random.Random:
        digest = zlib.crc32(
            f"probe|{probe_as}|{round_index}|{config_key}|{self.params.seed}".encode("ascii")
        )
        return random.Random(digest)

    def measure(
        self,
        outcome: RoutingOutcome,
        probe_as: ASN,
        round_index: int = 0,
    ) -> Optional[Traceroute]:
        """Run one traceroute from ``probe_as`` toward the prefix.

        Returns None when the probe currently has no route (e.g. its
        region lost reachability under a withdrawal) — matching a real
        measurement timing out entirely.
        """
        params = self.params
        rng = self._rng_for(probe_as, round_index, outcome.config.describe())
        measured_as = probe_as
        if params.path_error_rate and rng.random() < params.path_error_rate:
            neighbors = sorted(self.graph.neighbors(probe_as))
            neighbors = [n for n in neighbors if n in outcome.routes]
            if neighbors:
                measured_as = rng.choice(neighbors)
        try:
            as_path = outcome.forwarding_path(measured_as)
        except SimulationError:
            return None
        if (
            params.divergence_rate
            and len(as_path) > 3
            and rng.random() < params.divergence_rate
        ):
            as_path = self._diverge(outcome, as_path, rng)

        target = self.plan.target_address()
        hops: List[Optional[int]] = []
        previous_as: Optional[ASN] = None
        for asn in as_path[:-1]:  # the origin is represented by the target hop
            if previous_as is not None:
                ixp = self.ixps.ixp_for_link(previous_as, asn)
                if ixp is not None:
                    hops.append(
                        None
                        if rng.random() < params.unresponsive_rate
                        else self.ixps.lan_address(ixp, asn)
                    )
            for router_index in range(self._routers_in(asn)):
                if rng.random() < params.unresponsive_rate:
                    hops.append(None)
                    continue
                owner = asn
                if (
                    router_index == 0
                    and previous_as is not None
                    and rng.random() < params.border_sharing_rate
                ):
                    owner = previous_as
                hops.append(self.plan.router_address(owner, self._hop_slot(asn, router_index)))
            previous_as = asn

        if params.truncation_rate and rng.random() < params.truncation_rate and hops:
            cut = rng.randrange(1, len(hops) + 1)
            return Traceroute(
                probe_as=probe_as,
                target=target,
                hops=tuple(hops[:cut]),
                reached_target=False,
            )
        hops.append(target)
        return Traceroute(
            probe_as=probe_as, target=target, hops=tuple(hops), reached_target=True
        )

    def _diverge(
        self, outcome: RoutingOutcome, as_path: ASPath, rng: random.Random
    ) -> ASPath:
        """Fork the path at an intermediate AS onto a neighbor's best path.

        Models per-flow routing diversity inside large ASes: the packet
        exits through a different border than the AS's (single) best route
        in our model, continuing along that neighbor's path to the origin.
        Divergences that would create AS-level loops are discarded.
        """
        fork_index = rng.randrange(1, len(as_path) - 2)
        fork_as = as_path[fork_index]
        prefix = as_path[: fork_index + 1]
        default_next = as_path[fork_index + 1]
        neighbors = [
            neighbor
            for neighbor in sorted(self.graph.neighbors(fork_as))
            if neighbor != default_next and neighbor in outcome.routes
        ]
        rng.shuffle(neighbors)
        for neighbor in neighbors:
            try:
                suffix = outcome.forwarding_path(neighbor)
            except SimulationError:
                continue
            candidate = prefix + suffix
            if len(candidate) == len(set(candidate)):
                return candidate
        return as_path

    def _hop_slot(self, asn: ASN, router_index: int) -> int:
        """Stable interface index so the same router keeps its address."""
        digest = zlib.crc32(f"slot|{asn}|{router_index}|{self.params.seed}".encode("ascii"))
        return digest % 1024 + router_index
