"""RIPE-Atlas-like probe fleet.

The paper issues traceroutes from 1,600 RIPE Atlas probes toward the
PEERING prefix every 20 minutes, keeping each configuration active long
enough to collect at least three post-convergence rounds (§IV).  This
module models the fleet: probe placement across ASes, scheduled
measurement rounds, and per-round losses.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable, List, Sequence

from ..bgp.simulator import RoutingOutcome
from ..errors import MeasurementError
from ..topology.graph import ASGraph
from ..types import ASN
from .traceroute import Traceroute, TracerouteEngine


def select_probe_ases(
    graph: ASGraph,
    count: int,
    seed: int = 0,
    exclude: Iterable[ASN] = (),
) -> List[ASN]:
    """Choose ASes hosting probes (uniform sample; Atlas skews residential).

    Raises:
        MeasurementError: when fewer than ``count`` ASes are eligible.
    """
    excluded = set(exclude)
    eligible = sorted(asn for asn in graph.ases if asn not in excluded)
    if count > len(eligible):
        raise MeasurementError(
            f"requested {count} probe ASes but only {len(eligible)} eligible"
        )
    rng = random.Random(seed)
    return sorted(rng.sample(eligible, count))


@dataclass(frozen=True)
class MeasurementRound:
    """Traceroutes of one probing round under one configuration."""

    round_index: int
    traceroutes: List[Traceroute]


class AtlasProbeFleet:
    """A fixed fleet of probes issuing traceroutes toward the prefix.

    Args:
        probe_ases: ASes hosting one probe each.
        engine: the traceroute engine to measure with.
        rounds_per_config: measurement rounds collected per configuration
            (the paper ensures at least three post-convergence rounds).
    """

    def __init__(
        self,
        probe_ases: Sequence[ASN],
        engine: TracerouteEngine,
        rounds_per_config: int = 3,
    ) -> None:
        if not probe_ases:
            raise MeasurementError("probe fleet needs at least one probe")
        if rounds_per_config < 1:
            raise MeasurementError("need at least one measurement round")
        self.probe_ases = sorted(set(probe_ases))
        self.engine = engine
        self.rounds_per_config = rounds_per_config

    def measure(self, outcome: RoutingOutcome) -> List[MeasurementRound]:
        """Collect all rounds of traceroutes for one configuration."""
        rounds: List[MeasurementRound] = []
        for round_index in range(self.rounds_per_config):
            traceroutes = []
            for probe_as in self.probe_ases:
                trace = self.engine.measure(outcome, probe_as, round_index)
                if trace is not None:
                    traceroutes.append(trace)
            rounds.append(
                MeasurementRound(round_index=round_index, traceroutes=traceroutes)
            )
        return rounds

    def all_traceroutes(self, outcome: RoutingOutcome) -> List[Traceroute]:
        """All traceroutes across rounds, flattened."""
        return [
            trace
            for round_ in self.measure(outcome)
            for trace in round_.traceroutes
        ]
