"""End-to-end catchment measurement campaign.

Ties the measurement substrate together the way the paper's experiment
does: for each announcement configuration, collect public BGP feed paths
and Atlas traceroutes, repair the traceroutes, infer AS-level paths,
attribute every usable path to an origin peering link, resolve conflicts
(BGP priority, then majority), and accumulate the per-configuration
assignments into a :class:`~repro.measurement.catchment.CatchmentHistory`
for smax imputation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..bgp.simulator import RoutingOutcome
from ..faults.injection import FaultInjector
from ..topology.peering import OriginNetwork
from ..types import ASN, LinkId
from .atlas import AtlasProbeFleet
from .catchment import (
    KIND_BGP,
    KIND_TRACEROUTE,
    CatchmentObservation,
    ResolutionStats,
    resolve_observations,
)
from .collectors import BGPCollectorSet, link_of_bgp_path
from .ip2as import IPToASMapper
from .repair import (
    as_path_with_reason,
    build_bgp_segment_index,
    build_gap_index,
)


@dataclass
class ConfigMeasurement:
    """Everything measured for one configuration.

    Attributes:
        assignment: resolved source → link map.
        stats: conflict-resolution statistics.
        bgp_paths_observed: number of usable BGP feed paths.
        traceroutes_observed: number of usable traceroutes.
        collectors_flapped: vantage observations lost to injected
            collector flaps.
        traceroutes_lost: traceroutes lost in flight (injected
            measurement loss).
        traceroutes_dropped: degenerate traceroutes dropped with an
            explicit reason, counted by reason.
    """

    assignment: Dict[ASN, LinkId]
    stats: ResolutionStats
    bgp_paths_observed: int = 0
    traceroutes_observed: int = 0
    collectors_flapped: int = 0
    traceroutes_lost: int = 0
    traceroutes_dropped: Dict[str, int] = field(default_factory=dict)


class MeasurementCampaign:
    """Measures catchments for routing outcomes using feeds + probes.

    Args:
        origin: the announcing network.
        collectors: BGP feed vantage set.
        fleet: Atlas-like probe fleet.
        mapper: IP-to-AS mapper for traceroute hops.
    """

    def __init__(
        self,
        origin: OriginNetwork,
        collectors: BGPCollectorSet,
        fleet: AtlasProbeFleet,
        mapper: IPToASMapper,
    ) -> None:
        self.origin = origin
        self.collectors = collectors
        self.fleet = fleet
        self.mapper = mapper

    def measure(
        self,
        outcome: RoutingOutcome,
        fault_token: int = 0,
        injector: Optional[FaultInjector] = None,
        registry=None,
    ) -> ConfigMeasurement:
        """Measure one configuration's catchments.

        Args:
            outcome: the routing outcome to observe.
            fault_token: deterministic identity of this measurement round
                (typically the configuration's schedule index) — drives
                the injector's per-round fault decisions.
            injector: optional chaos hook; collector flaps and traceroute
                loss fire here, before repair, exactly where production
                measurements fail.
            registry: optional :class:`~repro.obs.metrics.MetricsRegistry`
                accumulating campaign counters (paths observed, drops by
                reason, injected losses) across the run.
        """
        observations: List[CatchmentObservation] = []

        bgp_observations = self.collectors.observe(outcome)
        collectors_flapped = 0
        if injector is not None:
            bgp_observations, collectors_flapped = injector.flap_collectors(
                fault_token, bgp_observations
            )
        bgp_paths = list(bgp_observations.values())
        usable_bgp = 0
        for vantage, path in bgp_observations.items():
            link = link_of_bgp_path(self.origin, path)
            if link is None:
                continue
            usable_bgp += 1
            # Every AS on the path (except the origin) is evidence of
            # membership in this link's catchment — BGP paths reveal the
            # routing decision of each traversed AS, not just the vantage.
            for asn in path:
                if asn == self.origin.asn:
                    break
                observations.append(
                    CatchmentObservation(source_as=asn, link=link, kind=KIND_BGP)
                )

        traceroutes = self.fleet.all_traceroutes(outcome)
        traceroutes_lost = 0
        if injector is not None:
            traceroutes, traceroutes_lost = injector.drop_traceroutes(
                fault_token, traceroutes
            )
        gap_index = build_gap_index(traceroutes)
        bgp_segments = build_bgp_segment_index(bgp_paths)
        usable_traces = 0
        dropped: Dict[str, int] = {}
        for trace in traceroutes:
            if not trace.reached_target:
                continue
            as_path, drop_reason = as_path_with_reason(
                trace, self.mapper, gap_index, bgp_segments
            )
            if drop_reason is not None:
                dropped[drop_reason] = dropped.get(drop_reason, 0) + 1
                continue
            link = link_of_bgp_path(self.origin, as_path)
            if link is None:
                continue
            usable_traces += 1
            for asn in as_path:
                if asn == self.origin.asn:
                    break
                observations.append(
                    CatchmentObservation(
                        source_as=asn, link=link, kind=KIND_TRACEROUTE
                    )
                )

        assignment, stats = resolve_observations(observations)
        assignment.pop(self.origin.asn, None)
        if registry is not None:
            registry.counter(
                "repro_campaign_bgp_paths_total",
                help="usable BGP feed paths observed",
            ).inc(usable_bgp)
            registry.counter(
                "repro_campaign_traceroutes_total",
                help="usable traceroutes observed",
            ).inc(usable_traces)
            registry.counter(
                "repro_campaign_collectors_flapped_total",
                help="vantage observations lost to injected collector flaps",
            ).inc(collectors_flapped)
            registry.counter(
                "repro_campaign_traceroutes_lost_total",
                help="traceroutes lost in flight (injected loss)",
            ).inc(traceroutes_lost)
            for reason, count in sorted(dropped.items()):
                registry.counter(
                    "repro_campaign_traceroutes_dropped_total",
                    help="degenerate traceroutes dropped, by reason",
                    labels={"reason": reason},
                ).inc(count)
        return ConfigMeasurement(
            assignment=assignment,
            stats=stats,
            bgp_paths_observed=usable_bgp,
            traceroutes_observed=usable_traces,
            collectors_flapped=collectors_flapped,
            traceroutes_lost=traceroutes_lost,
            traceroutes_dropped=dropped,
        )
