"""End-to-end catchment measurement campaign.

Ties the measurement substrate together the way the paper's experiment
does: for each announcement configuration, collect public BGP feed paths
and Atlas traceroutes, repair the traceroutes, infer AS-level paths,
attribute every usable path to an origin peering link, resolve conflicts
(BGP priority, then majority), and accumulate the per-configuration
assignments into a :class:`~repro.measurement.catchment.CatchmentHistory`
for smax imputation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..bgp.simulator import RoutingOutcome
from ..topology.peering import OriginNetwork
from ..types import ASN, LinkId
from .atlas import AtlasProbeFleet
from .catchment import (
    KIND_BGP,
    KIND_TRACEROUTE,
    CatchmentObservation,
    ResolutionStats,
    resolve_observations,
)
from .collectors import BGPCollectorSet, link_of_bgp_path
from .ip2as import IPToASMapper
from .repair import (
    as_path_from_traceroute,
    build_bgp_segment_index,
    build_gap_index,
)


@dataclass
class ConfigMeasurement:
    """Everything measured for one configuration.

    Attributes:
        assignment: resolved source → link map.
        stats: conflict-resolution statistics.
        bgp_paths_observed: number of usable BGP feed paths.
        traceroutes_observed: number of usable traceroutes.
    """

    assignment: Dict[ASN, LinkId]
    stats: ResolutionStats
    bgp_paths_observed: int = 0
    traceroutes_observed: int = 0


class MeasurementCampaign:
    """Measures catchments for routing outcomes using feeds + probes.

    Args:
        origin: the announcing network.
        collectors: BGP feed vantage set.
        fleet: Atlas-like probe fleet.
        mapper: IP-to-AS mapper for traceroute hops.
    """

    def __init__(
        self,
        origin: OriginNetwork,
        collectors: BGPCollectorSet,
        fleet: AtlasProbeFleet,
        mapper: IPToASMapper,
    ) -> None:
        self.origin = origin
        self.collectors = collectors
        self.fleet = fleet
        self.mapper = mapper

    def measure(self, outcome: RoutingOutcome) -> ConfigMeasurement:
        """Measure one configuration's catchments."""
        observations: List[CatchmentObservation] = []

        bgp_observations = self.collectors.observe(outcome)
        bgp_paths = list(bgp_observations.values())
        usable_bgp = 0
        for vantage, path in bgp_observations.items():
            link = link_of_bgp_path(self.origin, path)
            if link is None:
                continue
            usable_bgp += 1
            # Every AS on the path (except the origin) is evidence of
            # membership in this link's catchment — BGP paths reveal the
            # routing decision of each traversed AS, not just the vantage.
            for asn in path:
                if asn == self.origin.asn:
                    break
                observations.append(
                    CatchmentObservation(source_as=asn, link=link, kind=KIND_BGP)
                )

        traceroutes = self.fleet.all_traceroutes(outcome)
        gap_index = build_gap_index(traceroutes)
        bgp_segments = build_bgp_segment_index(bgp_paths)
        usable_traces = 0
        for trace in traceroutes:
            if not trace.reached_target:
                continue
            as_path = as_path_from_traceroute(
                trace, self.mapper, gap_index, bgp_segments
            )
            link = link_of_bgp_path(self.origin, as_path)
            if link is None:
                continue
            usable_traces += 1
            for asn in as_path:
                if asn == self.origin.asn:
                    break
                observations.append(
                    CatchmentObservation(
                        source_as=asn, link=link, kind=KIND_TRACEROUTE
                    )
                )

        assignment, stats = resolve_observations(observations)
        assignment.pop(self.origin.asn, None)
        return ConfigMeasurement(
            assignment=assignment,
            stats=stats,
            bgp_paths_observed=usable_bgp,
            traceroutes_observed=usable_traces,
        )
