"""PeeringDB-style IXP registry.

Traceroutes crossing an Internet exchange show a hop numbered from the
IXP's peering LAN, which belongs to the exchange — not to either member
AS.  The paper uses PeeringDB data to recognize and discard such hops
(§IV-b, citing traIXroute).  Offline we synthesize IXP peering LANs and
assign a random subset of peer-to-peer links to them.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from ..topology.graph import ASGraph
from ..topology.relationships import Relationship
from ..types import ASN, Prefix
from .ip2as import IXP_BLOCK_BASE


@dataclass(frozen=True)
class IXP:
    """One Internet exchange point.

    Attributes:
        name: display name.
        peering_lan: the exchange's shared subnet.
        members: ASes present at the exchange.
    """

    name: str
    peering_lan: Prefix
    members: FrozenSet[ASN]


class IXPRegistry:
    """Registry of IXPs and the peering links that traverse them.

    Args:
        ixps: exchanges to register.  Peer links between two members of
            the same exchange are treated as traversing its peering LAN.
    """

    def __init__(self, ixps: Iterable[IXP] = ()) -> None:
        self._ixps: List[IXP] = list(ixps)
        self._lan_of_link: Dict[Tuple[ASN, ASN], IXP] = {}
        for ixp in self._ixps:
            members = sorted(ixp.members)
            for i, a in enumerate(members):
                for b in members[i + 1:]:
                    self._lan_of_link.setdefault((a, b), ixp)

    @property
    def ixps(self) -> List[IXP]:
        """All registered exchanges."""
        return list(self._ixps)

    def prefixes(self) -> List[Prefix]:
        """All peering-LAN prefixes (for the IP-to-AS mapper)."""
        return [ixp.peering_lan for ixp in self._ixps]

    def ixp_for_link(self, a: ASN, b: ASN) -> Optional[IXP]:
        """The exchange a link crosses, or None for private interconnects."""
        key = (a, b) if a < b else (b, a)
        return self._lan_of_link.get(key)

    def lan_address(self, ixp: IXP, member: ASN) -> int:
        """Deterministic peering-LAN address of ``member`` at ``ixp``."""
        offset = 1 + (member % (ixp.peering_lan.num_addresses - 2))
        return ixp.peering_lan.network + offset


def synthesize_ixps(
    graph: ASGraph,
    fraction_of_peer_links: float = 0.5,
    num_ixps: int = 4,
    seed: int = 0,
) -> IXPRegistry:
    """Build a registry covering a fraction of the topology's peer links.

    Peer links are shuffled deterministically and dealt across ``num_ixps``
    exchanges until the requested fraction is covered; each exchange's
    membership is the union of its links' endpoints.
    """
    if not 0.0 <= fraction_of_peer_links <= 1.0:
        raise ValueError("fraction_of_peer_links must be in [0, 1]")
    if num_ixps < 1:
        raise ValueError("need at least one IXP")
    peer_links = [
        (a, b)
        for a, b, relationship in graph.links()
        if relationship is Relationship.PEER
    ]
    rng = random.Random(seed)
    rng.shuffle(peer_links)
    covered = peer_links[: round(len(peer_links) * fraction_of_peer_links)]
    member_sets: List[set] = [set() for _ in range(num_ixps)]
    for index, (a, b) in enumerate(covered):
        member_sets[index % num_ixps].update((a, b))
    ixps = [
        IXP(
            name=f"IXP-{index:02d}",
            peering_lan=Prefix(IXP_BLOCK_BASE + index * 0x100, 24),
            members=frozenset(members),
        )
        for index, members in enumerate(member_sets)
        if members
    ]
    return IXPRegistry(ixps)
