"""Soak campaign specifications: epochs, disruptions, and ceilings.

A soak run is a *long-horizon* fleet campaign — simulated weeks — cut
into deterministic epochs.  :class:`SoakSpec` wraps a
:class:`~repro.fleet.spec.FleetSpec` with everything the
:class:`~repro.soak.runner.SoakRunner` needs to make each epoch
hostile: which epochs restart the whole process, how hard the seeded
kill and checkpoint-corruption draws strike, how fast the fault plan
escalates, how many extra tenants churn in and out mid-campaign, and
the resource ceilings the :class:`~repro.soak.sentinel.ResourceSentinel`
asserts.

Like every spec in this repo it is frozen and fully seeded: the event
stream (:meth:`SoakSpec.events`) is built once and shared between the
disrupted campaign and its uninterrupted reference run, so the final
fleet digests are comparable byte for byte.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional

from ..errors import FleetError
from ..fleet.spec import AttackSpec, FleetSpec
from ..fleet.stream import EVICT, FleetEvent, launch_event, merge_streams
from .sentinel import ResourceCeilings


@dataclass(frozen=True)
class SoakSpec:
    """Frozen recipe for one soak campaign.

    Attributes:
        fleet: the underlying campaign (must checkpoint:
            ``checkpoint_every >= 1`` — restarts resume from disk).
        epochs: number of epochs; the last one drains the fleet to
            completion, the others stop at their simulated-minute
            horizon.
        epoch_minutes: simulated minutes per epoch.
        restart_every: tear the runtime down (process-style restart:
            every shard resumes from its checkpoint) after every Nth
            non-final epoch (0 = never restart).
        kill_rate: per-shard probability of a scripted hard kill at each
            non-final epoch boundary (seeded draw; kills auto-resume).
        corrupt_rate: per-shard probability that the checkpoint primary
            is mangled just before a restart (seeded draw; only fires
            when an intact rotated generation exists to roll back to).
        fault_plan: bundled fault-plan name escalated across epochs
            (restricted to result-preserving infra faults; "" disables).
        escalation_base / escalation_growth: the per-epoch scale curve
            (:func:`~repro.faults.plan.escalation_curve`).
        churn_tenants: extra tenants launched at later epoch boundaries
            and evicted two epochs after they appear (tenant add/evict
            churn; part of the shared event stream, so the reference run
            sees the identical churn).
        alternate_versions: write checkpoint schema v1 during odd epochs
            (the rolling-upgrade drill — restarts then migrate v1
            documents back up on load).
        ceilings: resource ceilings the sentinel asserts each epoch.
    """

    fleet: FleetSpec
    epochs: int = 4
    epoch_minutes: float = 60.0
    restart_every: int = 1
    kill_rate: float = 0.35
    corrupt_rate: float = 0.0
    fault_plan: str = "soak-infra"
    escalation_base: float = 0.5
    escalation_growth: float = 0.5
    churn_tenants: int = 0
    alternate_versions: bool = True
    ceilings: ResourceCeilings = ResourceCeilings()

    def __post_init__(self) -> None:
        if self.epochs < 1:
            raise FleetError("a soak campaign needs at least one epoch")
        if self.epoch_minutes <= 0:
            raise FleetError("epoch_minutes must be positive")
        if self.fleet.checkpoint_every < 1:
            raise FleetError(
                "soak campaigns need periodic checkpoints "
                "(fleet.checkpoint_every >= 1) — restarts resume from disk"
            )
        if self.restart_every < 0:
            raise FleetError("restart_every cannot be negative")
        for name, rate in (
            ("kill_rate", self.kill_rate),
            ("corrupt_rate", self.corrupt_rate),
        ):
            if not 0.0 <= rate <= 1.0:
                raise FleetError(f"{name} must be in [0, 1]")
        if self.escalation_base < 0 or self.escalation_growth < 0:
            raise FleetError("escalation factors cannot be negative")
        if self.churn_tenants < 0:
            raise FleetError("churn_tenants cannot be negative")

    # -- derivation -----------------------------------------------------

    def horizons(self) -> List[Optional[float]]:
        """Per-epoch simulated-minute horizons (None = drain to done)."""
        return [
            self.epoch_minutes * (epoch + 1)
            for epoch in range(self.epochs - 1)
        ] + [None]

    def churn_attacks(self) -> List[AttackSpec]:
        """The churn tenants' attacks, launch minutes at epoch boundaries.

        Extra tenants are derived by widening the fleet spec, so their
        seeds come from the same stable per-shard derivation — and the
        base tenants' traffic is untouched (derived seeds depend on the
        shard key, never on tenant counts).
        """
        if self.churn_tenants == 0:
            return []
        wide = replace(
            self.fleet, tenants=self.fleet.tenants + self.churn_tenants
        )
        base = set(self.fleet.tenant_names())
        span = max(1, self.epochs - 1)
        extra_names = [
            name for name in wide.tenant_names() if name not in base
        ]
        boundary = {
            name: self.epoch_minutes * (1 + (index % span))
            for index, name in enumerate(extra_names)
        }
        return [
            replace(attack, launch_minute=boundary[attack.tenant])
            for attack in wide.attacks()
            if attack.tenant not in base
        ]

    def events(self) -> List[FleetEvent]:
        """The canonical merged stream: base launches, churn launches,
        and churn evictions two epochs after each churn launch.

        Shared verbatim by the disrupted campaign and the uninterrupted
        reference run; restarts, kills, and corruption are *not* stream
        events — they are runner-side disruptions that must not change
        what the stream describes.
        """
        churn = self.churn_attacks()
        evictions = [
            FleetEvent(
                minute=attack.launch_minute + 2 * self.epoch_minutes,
                action=EVICT,
                tenant=attack.tenant,
                prefix=attack.prefix,
            )
            for attack in churn
        ]
        return merge_streams(
            [launch_event(attack) for attack in self.fleet.attacks()],
            [launch_event(attack) for attack in churn],
            evictions,
        )
