"""Resource sentinel: per-epoch RSS / FD / thread sampling with ceilings.

Long-horizon soak runs fail slowly — a few kilobytes of retained state
per restart, one leaked file descriptor per rotation — so the
:class:`ResourceSentinel` samples the *process* (resident set size, open
file descriptors, live threads) once per epoch, records the trajectory
into the metrics registry, publishes a ``resource`` event on the bus
(which the :class:`~repro.obs.slo.SloWatchdog` turns into a
``resource_ceiling`` SLO breach when a ceiling is crossed), and fits a
least-squares RSS slope across epochs so a steady leak fails the run
even when no single sample crosses its ceiling.

Readings come from ``/proc/self`` on Linux with a portable
``resource.getrusage`` fallback, and degrade to zero (never raise) on
platforms that expose neither — the sentinel observes the campaign, it
must not be able to crash it.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..obs import Observability, record_resource_sample

_BYTES_PER_MB = 1024 * 1024


def read_rss_mb() -> float:
    """Resident set size in MiB (``/proc/self/status`` VmRSS, with a
    ``getrusage`` fallback)."""
    try:
        with open("/proc/self/status", "r", encoding="ascii") as handle:
            for line in handle:
                if line.startswith("VmRSS:"):
                    return float(line.split()[1]) / 1024.0
    except (OSError, ValueError, IndexError):
        pass
    try:
        import resource

        # ru_maxrss is KiB on Linux, bytes on macOS; either way it is a
        # peak, which only over-reports — safe for a ceiling check.
        peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        if peak > 1 << 32:  # plausibly bytes
            return peak / _BYTES_PER_MB
        return peak / 1024.0
    except Exception:
        return 0.0


def count_open_fds() -> int:
    """Open file descriptors (``/proc/self/fd``; 0 when unreadable)."""
    try:
        return len(os.listdir("/proc/self/fd"))
    except OSError:
        return 0


@dataclass(frozen=True)
class ResourceCeilings:
    """Per-sample ceilings plus the cross-epoch RSS leak budget.

    A ceiling of 0 disables that check.  ``rss_slope_mb_per_epoch``
    bounds the least-squares RSS growth across the whole campaign: a
    process that gains more than this many MiB per epoch on trend is
    leaking, even if it never touches ``rss_mb``.
    """

    rss_mb: float = 4096.0
    open_fds: int = 1024
    threads: int = 128
    rss_slope_mb_per_epoch: float = 64.0


@dataclass(frozen=True)
class ResourceSample:
    """One per-epoch reading of the process's resource footprint."""

    epoch: int
    rss_mb: float
    open_fds: int
    threads: int

    def as_dict(self) -> dict:
        return {
            "epoch": self.epoch,
            "rss_mb": round(self.rss_mb, 3),
            "open_fds": self.open_fds,
            "threads": self.threads,
        }


@dataclass
class ResourceSentinel:
    """Samples process resources each epoch and asserts the ceilings.

    Wire the same :class:`~repro.obs.Observability` bundle the fleet
    uses: samples land in the registry as ``repro_resource_*`` gauges
    and on the bus as ``resource`` events, so a watchdog built from
    :data:`~repro.obs.slo.SOAK_SLOS` flips ``/readyz`` when a ceiling
    is crossed.
    """

    ceilings: ResourceCeilings = ResourceCeilings()
    obs: Observability = field(default_factory=Observability)
    samples: List[ResourceSample] = field(default_factory=list)

    def sample(self, epoch: int) -> ResourceSample:
        """Take one reading, record it, and publish its utilization."""
        reading = ResourceSample(
            epoch=epoch,
            rss_mb=read_rss_mb(),
            open_fds=count_open_fds(),
            threads=threading.active_count(),
        )
        self.samples.append(reading)
        if self.obs.registry is not None:
            record_resource_sample(
                self.obs.registry,
                rss_bytes=reading.rss_mb * _BYTES_PER_MB,
                open_fds=reading.open_fds,
                threads=reading.threads,
            )
        utilization, worst = self.utilization(reading)
        if self.obs.bus is not None:
            self.obs.bus.publish(
                "resource",
                epoch=epoch,
                rss_mb=round(reading.rss_mb, 3),
                open_fds=reading.open_fds,
                threads=reading.threads,
                ceiling_utilization=round(utilization, 6),
                worst_resource=worst,
            )
        return reading

    def utilization(self, reading: ResourceSample) -> Tuple[float, str]:
        """``(worst fraction-of-ceiling, resource name)`` for one sample."""
        fractions = []
        if self.ceilings.rss_mb > 0:
            fractions.append((reading.rss_mb / self.ceilings.rss_mb, "rss"))
        if self.ceilings.open_fds > 0:
            fractions.append(
                (reading.open_fds / self.ceilings.open_fds, "open_fds")
            )
        if self.ceilings.threads > 0:
            fractions.append(
                (reading.threads / self.ceilings.threads, "threads")
            )
        if not fractions:
            return 0.0, "none"
        return max(fractions)

    def rss_slope_mb(self) -> float:
        """Least-squares RSS growth in MiB per epoch across all samples."""
        count = len(self.samples)
        if count < 2:
            return 0.0
        xs = [float(s.epoch) for s in self.samples]
        ys = [s.rss_mb for s in self.samples]
        mean_x = sum(xs) / count
        mean_y = sum(ys) / count
        denominator = sum((x - mean_x) ** 2 for x in xs)
        if denominator == 0:
            return 0.0
        numerator = sum(
            (x - mean_x) * (y - mean_y) for x, y in zip(xs, ys)
        )
        return numerator / denominator

    def breaches(self) -> List[str]:
        """Human-readable ceiling violations across the whole campaign."""
        found: List[str] = []
        for reading in self.samples:
            if 0 < self.ceilings.rss_mb < reading.rss_mb:
                found.append(
                    f"epoch {reading.epoch}: rss {reading.rss_mb:.0f} MiB "
                    f"over ceiling {self.ceilings.rss_mb:.0f} MiB"
                )
            if 0 < self.ceilings.open_fds < reading.open_fds:
                found.append(
                    f"epoch {reading.epoch}: {reading.open_fds} open fds "
                    f"over ceiling {self.ceilings.open_fds}"
                )
            if 0 < self.ceilings.threads < reading.threads:
                found.append(
                    f"epoch {reading.epoch}: {reading.threads} threads "
                    f"over ceiling {self.ceilings.threads}"
                )
        slope = self.rss_slope_mb()
        budget = self.ceilings.rss_slope_mb_per_epoch
        if 0 < budget < slope:
            found.append(
                f"rss slope {slope:.1f} MiB/epoch over budget "
                f"{budget:.1f} MiB/epoch"
            )
        return found

    def latest(self) -> Optional[ResourceSample]:
        """The most recent sample, if any."""
        return self.samples[-1] if self.samples else None
