"""Soak campaign reports: per-epoch trajectory plus the final verdict.

The report answers two questions.  Did the science survive — is the
final fleet digest of a campaign riddled with restarts, kills,
checkpoint corruption, and schema downgrades identical to an
uninterrupted reference run?  And did the process survive — did RSS,
file descriptors, and thread counts stay under their ceilings for the
whole horizon?

:class:`EpochStats` rows carry *cumulative* counters (resumes,
migrations, crashes) so the table reads as a trajectory; totals on
:class:`SoakReport` repeat the final row for convenience.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..fleet.shard import ShardReport
from .sentinel import ResourceSample

_HEADER = (
    f"{'epoch':>5}  {'wrote':>5}  {'windows':>7}  {'kills':>5}  "
    f"{'corrupt':>7}  {'restart':>7}  {'resumes':>7}  {'migrated':>8}  "
    f"{'crashes':>7}  {'rss_mb':>8}  {'fds':>5}  {'thr':>4}"
)


@dataclass(frozen=True)
class EpochStats:
    """One epoch's end-of-epoch snapshot (counters are cumulative)."""

    epoch: int
    version_written: int
    horizon_minutes: Optional[float]
    windows: int
    kills: int
    corruptions: int
    restarted: bool
    resumes: int
    migrations: int
    crashes: int
    rss_mb: float
    open_fds: int
    threads: int

    def as_dict(self) -> dict:
        return {
            "epoch": self.epoch,
            "version_written": self.version_written,
            "horizon_minutes": self.horizon_minutes,
            "windows": self.windows,
            "kills": self.kills,
            "corruptions": self.corruptions,
            "restarted": self.restarted,
            "resumes": self.resumes,
            "migrations": self.migrations,
            "crashes": self.crashes,
            "rss_mb": round(self.rss_mb, 3),
            "open_fds": self.open_fds,
            "threads": self.threads,
        }


@dataclass(frozen=True)
class SoakReport:
    """End-of-campaign rollup for one soak run.

    ``digest`` is the attribution-only fleet digest (checkpoint bytes
    excluded — under version alternation the envelope legitimately
    differs); ``digest_full`` includes checkpoint bytes.
    ``reference_digest``/``reference_digest_full`` come from the
    uninterrupted reference run when one was performed ("" otherwise).
    """

    epochs: List[EpochStats]
    shards: List[ShardReport]
    digest: str
    digest_full: str
    reference_digest: str = ""
    reference_digest_full: str = ""
    restarts: int = 0
    kills: int = 0
    corruptions: int = 0
    resumes: int = 0
    migrations: int = 0
    crashes: int = 0
    rss_slope_mb: float = 0.0
    resource_breaches: List[str] = field(default_factory=list)
    samples: List[ResourceSample] = field(default_factory=list)

    @property
    def verified(self) -> bool:
        """Attribution digests match the uninterrupted reference run."""
        return bool(self.reference_digest) and (
            self.digest == self.reference_digest
        )

    @property
    def checkpoints_match(self) -> bool:
        """Full digests (checkpoint bytes included) match the reference."""
        return bool(self.reference_digest_full) and (
            self.digest_full == self.reference_digest_full
        )

    @property
    def healthy(self) -> bool:
        """No resource ceiling or leak-budget violations."""
        return not self.resource_breaches

    def as_dict(self) -> dict:
        return {
            "epochs": [stats.as_dict() for stats in self.epochs],
            "shards": [shard.as_dict() for shard in self.shards],
            "digest": self.digest,
            "digest_full": self.digest_full,
            "reference_digest": self.reference_digest,
            "reference_digest_full": self.reference_digest_full,
            "verified": self.verified,
            "restarts": self.restarts,
            "kills": self.kills,
            "corruptions": self.corruptions,
            "resumes": self.resumes,
            "migrations": self.migrations,
            "crashes": self.crashes,
            "rss_slope_mb": round(self.rss_slope_mb, 3),
            "resource_breaches": list(self.resource_breaches),
            "samples": [sample.as_dict() for sample in self.samples],
        }


def render_epoch_row(stats: EpochStats) -> str:
    """One fixed-width table row for an epoch."""
    return (
        f"{stats.epoch:>5}  v{stats.version_written:<4}  "
        f"{stats.windows:>7}  {stats.kills:>5}  {stats.corruptions:>7}  "
        f"{'yes' if stats.restarted else '-':>7}  {stats.resumes:>7}  "
        f"{stats.migrations:>8}  {stats.crashes:>7}  "
        f"{stats.rss_mb:>8.1f}  {stats.open_fds:>5}  {stats.threads:>4}"
    )


def render_soak_table(epochs: Sequence[EpochStats]) -> str:
    """The per-epoch trajectory table."""
    lines = [_HEADER]
    for stats in epochs:
        lines.append(render_epoch_row(stats))
    return "\n".join(lines)


def render_soak_summary(report: SoakReport) -> str:
    """End-of-campaign verdict: disruption totals, resources, digests."""
    lines = [
        f"soak: {len(report.epochs)} epochs · {report.restarts} restarts · "
        f"{report.kills} kills · {report.corruptions} corruptions · "
        f"{report.resumes} resumes ({report.migrations} migrated) · "
        f"{report.crashes} crashes",
        f"resources: rss slope {report.rss_slope_mb:+.2f} MiB/epoch · "
        + (
            f"{len(report.resource_breaches)} ceiling breaches"
            if report.resource_breaches
            else "all ceilings held"
        ),
    ]
    for breach in report.resource_breaches:
        lines.append(f"  breach: {breach}")
    lines.append(f"soak digest: {report.digest}")
    if report.reference_digest:
        lines.append(f"reference digest: {report.reference_digest}")
        lines.append(
            "verdict: "
            + (
                "MATCH — disrupted campaign reproduced the reference run"
                if report.verified
                else "MISMATCH — disruption changed the science"
            )
        )
    return "\n".join(lines)
