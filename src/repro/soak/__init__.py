"""Soak & upgrade harness: long-horizon operation as a checkable fact.

The fleet runtime proves a campaign survives a single disruption; this
package proves it survives *weeks* of them.  A soak campaign cuts one
deterministic fleet replay into epochs and disrupts every boundary —
process-style restarts resumed from checkpoints, seeded kills,
checkpoint corruption forced through the rollback path, escalating
(result-preserving) engine faults, tenant churn, and checkpoint schema
alternation that exercises the v1→v2 migration registry mid-run — while
a :class:`~repro.soak.sentinel.ResourceSentinel` watches RSS, file
descriptors, and threads against ceilings and a leak budget.

Because every shard is stateless-seeded, the disrupted campaign must
end with the *same* fleet attribution digest as an uninterrupted
reference run over the same event stream; the digest comparison is the
soak oracle.
"""

from .report import (
    EpochStats,
    SoakReport,
    render_epoch_row,
    render_soak_summary,
    render_soak_table,
)
from .runner import SoakRunner
from .sentinel import (
    ResourceCeilings,
    ResourceSample,
    ResourceSentinel,
    count_open_fds,
    read_rss_mb,
)
from .spec import SoakSpec

__all__ = [
    "EpochStats",
    "ResourceCeilings",
    "ResourceSample",
    "ResourceSentinel",
    "SoakReport",
    "SoakRunner",
    "SoakSpec",
    "count_open_fds",
    "read_rss_mb",
    "render_epoch_row",
    "render_soak_summary",
    "render_soak_table",
]
