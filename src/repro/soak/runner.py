"""The soak runner: a disrupted long-horizon campaign vs. its reference.

:class:`SoakRunner` drives one fleet campaign as a sequence of epochs
and makes each epoch boundary hostile on purpose:

* **fault escalation** — per-tenant engine injectors are rebuilt every
  epoch from the plan's :func:`~repro.faults.plan.escalation_curve`
  scale (infra faults only: the engine contains worker crashes/hangs
  with byte-identical results),
* **scripted kills** — seeded per-shard draws hard-kill live services,
  which auto-resume from their checkpoints,
* **checkpoint corruption** — seeded draws mangle a shard's primary
  checkpoint right before a restart, forcing the rollback path through
  the rotated generations,
* **whole-process restarts** — the runtime is torn down and rebuilt
  mid-stream (``skip_events`` + :meth:`~repro.fleet.runtime.FleetRuntime.adopt`),
  every surviving shard resuming from disk,
* **schema alternation** — odd epochs write checkpoint schema v1 via
  :func:`~repro.live.checkpoint.writing_version`, so restarts exercise
  the v1→v2 migration registry mid-campaign (a rolling upgrade drill),
* **tenant churn** — extra tenants launch and are evicted through the
  shared event stream (so the reference run churns identically).

The verdict is the fleet digest: after all of that, the disrupted
campaign's final attribution digest must equal an uninterrupted
reference run over the *same* event stream.  Determinism is not a test
fixture here — it is the oracle that makes a simulated-weeks soak
checkable at all.

Disruptions deliberately live in the runner, not the event stream:
kills, restarts, and corruption are *process* failures the stream's
description of the campaign must be independent of.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Sequence

from ..errors import FleetError
from ..faults.injection import FaultInjector
from ..faults.plan import FaultPlan, escalation_curve, load_fault_plan, stable_unit
from ..fleet.runtime import FleetReport, FleetRuntime, fleet_digest
from ..fleet.shard import EVICTED, ShardReport
from ..fleet.spec import ShardKey
from ..fleet.stream import FleetEvent
from ..live.checkpoint import (
    CHECKPOINT_VERSION,
    generation_path,
    writing_version,
)
from ..obs import Observability
from .report import EpochStats, SoakReport
from .sentinel import ResourceSentinel
from .spec import SoakSpec


class SoakRunner:
    """Runs one soak campaign end to end.

    Args:
        spec: the frozen soak recipe.
        checkpoint_dir: directory for the disrupted campaign's
            checkpoints (required — restarts resume from disk).
        workers: simulation workers per tenant engine.
        obs: observability bundle shared by the disrupted campaign, the
            sentinel, and (via tagged views) every shard.  The reference
            run deliberately runs unobserved so its bus/metrics traffic
            never mixes with the campaign under test.
        verify: perform the uninterrupted reference run and compare
            digests (skip for quick smoke runs).
        reference_dir: checkpoint directory for the reference run
            (default ``<checkpoint_dir>/reference``; checkpoint bytes
            are location-independent, so the separate directory does not
            affect the comparison).
        flight_dir: directory for per-shard flight-recorder bundles
            ("" leaves flight recording off).  Kills dump through the
            shard's own recorder (reason ``kill``); checkpoint
            corruption dumps here with reason ``corruption`` before the
            restart destroys the evidence.  The reference run never
            records flights — it must stay unobserved.
    """

    def __init__(
        self,
        spec: SoakSpec,
        checkpoint_dir: str,
        workers: int = 1,
        obs: Optional[Observability] = None,
        verify: bool = True,
        reference_dir: str = "",
        flight_dir: str = "",
    ) -> None:
        if not checkpoint_dir:
            raise FleetError(
                "soak runs need a checkpoint directory — restarts resume "
                "from disk"
            )
        self.spec = spec
        self.checkpoint_dir = checkpoint_dir
        self.workers = workers
        self.obs = obs if obs is not None else Observability()
        self.verify = verify
        self.reference_dir = reference_dir or os.path.join(
            checkpoint_dir, "reference"
        )
        self.flight_dir = flight_dir
        self.sentinel = ResourceSentinel(spec.ceilings, obs=self.obs)
        self._plan: Optional[FaultPlan] = (
            load_fault_plan(spec.fault_plan).infra_only()
            if spec.fault_plan
            else None
        )
        self._curve = escalation_curve(
            spec.epochs, spec.escalation_base, spec.escalation_growth
        )

    # -- epoch mechanics -------------------------------------------------

    def version_for(self, epoch: int) -> int:
        """The checkpoint schema version this epoch writes."""
        if self.spec.alternate_versions and epoch % 2 == 1:
            return CHECKPOINT_VERSION - 1
        return CHECKPOINT_VERSION

    def _build(self, events: Sequence[FleetEvent], skip: int) -> FleetRuntime:
        os.makedirs(self.checkpoint_dir, exist_ok=True)
        return FleetRuntime(
            self.spec.fleet,
            events=events,
            obs=self.obs,
            workers=self.workers,
            checkpoint_dir=self.checkpoint_dir,
            skip_events=skip,
            flight_dir=self.flight_dir,
        )

    def _escalate(self, runtime: FleetRuntime, epoch: int) -> None:
        """Swap in this epoch's scaled engine injectors."""
        if self._plan is None or not self._plan.specs:
            return
        scaled = self._plan.scaled(self._curve[epoch])
        runtime.set_engine_injector_factory(
            lambda tenant: FaultInjector(scaled)
        )

    def _kill(self, runtime: FleetRuntime, epoch: int) -> int:
        """Seeded hard kills at the epoch boundary (auto-resumed)."""
        if self.spec.kill_rate <= 0:
            return 0
        count = 0
        for key in sorted(runtime.shards):
            shard = runtime.shards[key]
            if shard.service is None or not shard.runnable:
                continue
            draw = stable_unit(
                self.spec.fleet.seed, "soak-kill", epoch, *key
            )
            if draw < self.spec.kill_rate:
                runtime.crash(key)
                count += 1
        return count

    def _corrupt(self, runtime: FleetRuntime, epoch: int) -> int:
        """Seeded primary-checkpoint mangling just before a restart.

        Damages the file from outside (the way real corruption arrives),
        and only when a rotated ``.1`` generation exists: the adopted
        shard then rolls back, replays, and *rewrites* the primary
        byte-identically — checkpoint ordinals travel in the payload.
        """
        if self.spec.corrupt_rate <= 0:
            return 0
        count = 0
        for key in sorted(runtime.shards):
            shard = runtime.shards[key]
            path = shard.checkpoint_path
            if not path or not os.path.exists(path):
                continue
            if not os.path.exists(generation_path(path, 1)):
                continue
            draw = stable_unit(
                self.spec.fleet.seed, "soak-corrupt", epoch, *key
            )
            if draw < self.spec.corrupt_rate:
                with open(path, "w", encoding="utf-8") as handle:
                    handle.write("damaged by soak harness\n")
                count += 1
                # Dump the black box *now*: the imminent restart tears
                # this runtime (and its rings) down.
                shard.dump_flight("corruption", epoch=epoch)
        return count

    def _restart_due(self, epoch: int) -> bool:
        every = self.spec.restart_every
        return every > 0 and (epoch + 1) % every == 0

    def _restart(
        self,
        runtime: FleetRuntime,
        events: Sequence[FleetEvent],
        carried: Dict[ShardKey, ShardReport],
        totals: Dict[str, int],
    ) -> FleetRuntime:
        """Whole-process-style restart: rebuild the runtime mid-stream.

        Evicted shards cannot be re-created (their evidence lives only
        in their final report), so their reports are carried across the
        restart; every other shard is adopted and resumes from disk.
        """
        snapshot = runtime.report()
        totals["resumes"] += snapshot.resumes
        totals["migrations"] += snapshot.migrations
        totals["crashes"] += snapshot.crashes
        adoptable = []
        for key in sorted(runtime.shards):
            shard = runtime.shards[key]
            if shard.state == EVICTED:
                carried[key] = shard.report()
            else:
                adoptable.append(shard.attack)
        skip = runtime._cursor
        runtime.close()
        rebuilt = self._build(events, skip=skip)
        for attack in adoptable:
            rebuilt.adopt(attack)
        return rebuilt

    @staticmethod
    def _windows(
        report: FleetReport, carried: Dict[ShardKey, ShardReport]
    ) -> int:
        return sum(shard.windows for shard in report.shards) + sum(
            shard.windows for shard in carried.values()
        )

    # -- drivers ---------------------------------------------------------

    def reference_run(
        self, events: Optional[Sequence[FleetEvent]] = None
    ) -> FleetReport:
        """The uninterrupted oracle: same stream, no disruptions.

        Runs unobserved (fresh :class:`~repro.obs.Observability`) in its
        own checkpoint directory so nothing it does bleeds into the
        campaign under test.
        """
        stream = list(events) if events is not None else self.spec.events()
        os.makedirs(self.reference_dir, exist_ok=True)
        runtime = FleetRuntime(
            self.spec.fleet,
            events=stream,
            workers=self.workers,
            checkpoint_dir=self.reference_dir,
        )
        try:
            return runtime.run()
        finally:
            runtime.close()

    def run(self) -> SoakReport:
        """Drive the whole campaign; returns the end-of-soak report."""
        events = self.spec.events()
        runtime = self._build(events, skip=0)
        carried: Dict[ShardKey, ShardReport] = {}
        totals = {"resumes": 0, "migrations": 0, "crashes": 0}
        epoch_rows: List[EpochStats] = []
        restarts = kills_total = corruptions_total = 0
        try:
            for epoch, horizon in enumerate(self.spec.horizons()):
                self._escalate(runtime, epoch)
                version = self.version_for(epoch)
                with writing_version(version):
                    runtime.run_until(horizon)
                kills = 0
                corruptions = 0
                restarted = False
                if horizon is not None:
                    kills = self._kill(runtime, epoch)
                    kills_total += kills
                    if self._restart_due(epoch):
                        corruptions = self._corrupt(runtime, epoch)
                        corruptions_total += corruptions
                        runtime = self._restart(
                            runtime, events, carried, totals
                        )
                        restarted = True
                        restarts += 1
                sample = self.sentinel.sample(epoch)
                snapshot = runtime.report()
                epoch_rows.append(
                    EpochStats(
                        epoch=epoch,
                        version_written=version,
                        horizon_minutes=horizon,
                        windows=self._windows(snapshot, carried),
                        kills=kills,
                        corruptions=corruptions,
                        restarted=restarted,
                        resumes=totals["resumes"] + snapshot.resumes,
                        migrations=totals["migrations"]
                        + snapshot.migrations,
                        crashes=totals["crashes"] + snapshot.crashes,
                        rss_mb=sample.rss_mb,
                        open_fds=sample.open_fds,
                        threads=sample.threads,
                    )
                )
            final = runtime.report()
        finally:
            runtime.close()
        shards = list(final.shards) + [
            carried[key] for key in sorted(carried)
        ]
        reference_digest = reference_digest_full = ""
        if self.verify:
            reference = self.reference_run(events)
            reference_digest = fleet_digest(
                reference.shards, include_checkpoints=False
            )
            reference_digest_full = fleet_digest(
                reference.shards, include_checkpoints=True
            )
        return SoakReport(
            epochs=epoch_rows,
            shards=shards,
            digest=fleet_digest(shards, include_checkpoints=False),
            digest_full=fleet_digest(shards, include_checkpoints=True),
            reference_digest=reference_digest,
            reference_digest_full=reference_digest_full,
            restarts=restarts,
            kills=kills_total,
            corruptions=corruptions_total,
            resumes=totals["resumes"] + final.resumes,
            migrations=totals["migrations"] + final.migrations,
            crashes=totals["crashes"] + final.crashes,
            rss_slope_mb=self.sentinel.rss_slope_mb(),
            resource_breaches=self.sentinel.breaches(),
            samples=list(self.sentinel.samples),
        )
