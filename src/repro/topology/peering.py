"""The origin network: a PEERING-like multi-homed AS.

The paper announces prefixes from the PEERING research testbed (AS47065),
which has points of presence ("muxes") each connected to one transit
provider (Table I).  :class:`OriginNetwork` models exactly that: an origin
AS attached to a set of named peering links, each toward one provider AS
in the topology.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..errors import TopologyError
from ..types import ASN, LinkId
from .generator import GeneratedTopology
from .graph import ASGraph
from .relationships import Relationship

#: PEERING's AS number, used as the default origin ASN.
PEERING_ASN = 47065

#: Table I of the paper: mux name → (transit provider name, provider ASN).
PAPER_MUXES: Tuple[Tuple[str, str, ASN], ...] = (
    ("AMS-IX", "Bit BV", 12859),
    ("GRNet", "GRNet", 5408),
    ("USC/ISI", "Los Nettos", 226),
    ("NEU", "Northeastern University", 156),
    ("Seattle-IX", "RGnet", 3130),
    ("UFMG", "RNP", 1916),
    ("UW", "Pacific Northwest GigaPoP", 101),
)


@dataclass(frozen=True)
class PeeringLink:
    """One peering link ("mux" + provider) of the origin network.

    Attributes:
        link_id: stable identifier used in announcement configurations.
        provider: ASN of the transit provider on the far side.
        provider_name: human-readable provider name (for reporting).
    """

    link_id: LinkId
    provider: ASN
    provider_name: str = ""


class OriginNetwork:
    """A multi-homed origin AS with named peering links.

    This is the network deploying the paper's techniques: it controls
    which links announce the prefix, with what prepending, and with which
    poisoned ASes.
    """

    def __init__(self, asn: ASN, links: Sequence[PeeringLink]) -> None:
        if not links:
            raise TopologyError("origin network needs at least one peering link")
        link_ids = [link.link_id for link in links]
        if len(set(link_ids)) != len(link_ids):
            raise TopologyError(f"duplicate peering link ids: {link_ids}")
        providers = [link.provider for link in links]
        if len(set(providers)) != len(providers):
            raise TopologyError(
                "each peering link must use a distinct provider AS"
            )
        self.asn = asn
        self._links: Dict[LinkId, PeeringLink] = {
            link.link_id: link for link in links
        }

    @property
    def link_ids(self) -> List[LinkId]:
        """All peering link ids, sorted for determinism."""
        return sorted(self._links)

    @property
    def links(self) -> List[PeeringLink]:
        """All peering links, sorted by link id."""
        return [self._links[link_id] for link_id in self.link_ids]

    def link(self, link_id: LinkId) -> PeeringLink:
        """Look up a peering link by id.

        Raises:
            TopologyError: if the link id is unknown.
        """
        try:
            return self._links[link_id]
        except KeyError:
            raise TopologyError(f"unknown peering link {link_id!r}") from None

    def provider_of(self, link_id: LinkId) -> ASN:
        """Provider ASN behind ``link_id``."""
        return self.link(link_id).provider

    def link_toward_provider(self, provider: ASN) -> PeeringLink:
        """Peering link whose provider is ``provider``.

        Raises:
            TopologyError: if no link uses that provider.
        """
        for link in self._links.values():
            if link.provider == provider:
                return link
        raise TopologyError(f"no peering link toward provider AS {provider}")

    def __len__(self) -> int:
        return len(self._links)


def attach_origin(
    topology: GeneratedTopology,
    origin_asn: ASN = PEERING_ASN,
    num_links: int = 7,
    seed: int = 0,
) -> OriginNetwork:
    """Attach a PEERING-like origin AS to a generated topology.

    Providers are chosen among transit-tier ASes, spread across the degree
    distribution (a mix of well-connected and modest providers, like the
    paper's mix of NRENs and IXP members), and the origin is linked to
    each as its customer.  Link ids reuse the paper's mux names when seven
    or fewer links are requested.

    Args:
        topology: the generated topology to attach to (mutated in place).
        origin_asn: ASN for the origin (defaults to PEERING's AS47065).
        num_links: number of peering links to create.
        seed: PRNG seed for provider selection.

    Returns:
        The attached :class:`OriginNetwork`.

    Raises:
        TopologyError: if the topology lacks enough distinct providers or
            the origin ASN already exists in the graph.
    """
    graph = topology.graph
    if origin_asn in graph:
        raise TopologyError(f"origin ASN {origin_asn} already present in topology")
    pool = list(topology.transit) or list(topology.tier1)
    if num_links > len(pool):
        raise TopologyError(
            f"requested {num_links} peering links but only {len(pool)} candidate providers"
        )
    providers = _spread_sample(graph, pool, num_links, random.Random(seed))

    links = []
    for index, provider in enumerate(providers):
        if index < len(PAPER_MUXES):
            mux_name, provider_name, _ = PAPER_MUXES[index]
        else:
            mux_name, provider_name = f"mux{index:02d}", f"Provider{index:02d}"
        links.append(
            PeeringLink(link_id=mux_name, provider=provider, provider_name=provider_name)
        )
        graph.add_link(origin_asn, provider, Relationship.PROVIDER)
    return OriginNetwork(origin_asn, links)


def _spread_sample(
    graph: ASGraph, pool: Sequence[ASN], count: int, rng: random.Random
) -> List[ASN]:
    """Pick ``count`` providers spread across the degree distribution.

    The pool is sorted by degree and divided into ``count`` equal slices;
    one provider is drawn uniformly from each slice.  This mirrors the
    paper's provider mix and guarantees catchment diversity (all-high-degree
    providers would shadow each other).
    """
    ranked = sorted(pool, key=lambda asn: (graph.degree(asn), asn))
    slices = [
        ranked[(i * len(ranked)) // count : ((i + 1) * len(ranked)) // count]
        for i in range(count)
    ]
    return [rng.choice(chunk) for chunk in slices if chunk]
