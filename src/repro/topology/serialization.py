"""Read and write AS topologies in CAIDA ``as-rel`` format.

The format is one link per line, ``<a>|<b>|<code>`` where code ``-1``
means ``a`` is the provider of ``b`` and ``0`` means ``a`` and ``b`` peer.
Lines starting with ``#`` are comments.  This lets a real CAIDA snapshot
be loaded in place of the synthetic generator, and lets generated
topologies be inspected with standard tooling.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import IO, Union

from ..errors import DataFormatError
from .graph import ASGraph
from .relationships import CAIDA_P2C, CAIDA_P2P, Relationship

PathOrIO = Union[str, Path, IO[str]]


def load_as_rel(source: PathOrIO) -> ASGraph:
    """Load an :class:`ASGraph` from a CAIDA as-rel file or file object.

    Raises:
        DataFormatError: on malformed lines, unknown codes, or
            contradictory duplicate links.
    """
    if isinstance(source, (str, Path)):
        with open(source, "r", encoding="utf-8") as handle:
            return _load(handle)
    return _load(source)


def _load(handle: IO[str]) -> ASGraph:
    graph = ASGraph()
    for lineno, raw_line in enumerate(handle, start=1):
        line = raw_line.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split("|")
        if len(parts) < 3:
            raise DataFormatError(f"line {lineno}: expected a|b|code, got {line!r}")
        try:
            a, b, code = int(parts[0]), int(parts[1]), int(parts[2])
        except ValueError as exc:
            raise DataFormatError(f"line {lineno}: non-integer field in {line!r}") from exc
        if code == CAIDA_P2C:
            relationship_of_b = Relationship.CUSTOMER  # a is the provider
        elif code == CAIDA_P2P:
            relationship_of_b = Relationship.PEER
        else:
            raise DataFormatError(f"line {lineno}: unknown relationship code {code}")
        try:
            graph.add_link(a, b, relationship_of_b)
        except Exception as exc:
            raise DataFormatError(f"line {lineno}: {exc}") from exc
    return graph


def dump_as_rel(graph: ASGraph, destination: PathOrIO) -> None:
    """Write ``graph`` in CAIDA as-rel format.

    Provider-customer links are written from the provider side
    (``provider|customer|-1``); peering links as ``a|b|0`` with a < b.
    """
    if isinstance(destination, (str, Path)):
        with open(destination, "w", encoding="utf-8") as handle:
            _dump(graph, handle)
        return
    _dump(graph, destination)


def _dump(graph: ASGraph, handle: IO[str]) -> None:
    handle.write("# as-rel written by repro.topology.serialization\n")
    for a, b, relationship_of_b in graph.links():
        if relationship_of_b is Relationship.CUSTOMER:
            handle.write(f"{a}|{b}|{CAIDA_P2C}\n")  # a provides for b
        elif relationship_of_b is Relationship.PROVIDER:
            handle.write(f"{b}|{a}|{CAIDA_P2C}\n")  # b provides for a
        else:
            handle.write(f"{a}|{b}|{CAIDA_P2P}\n")


def dumps_as_rel(graph: ASGraph) -> str:
    """Serialize ``graph`` to an as-rel string."""
    buffer = io.StringIO()
    _dump(graph, buffer)
    return buffer.getvalue()


def loads_as_rel(text: str) -> ASGraph:
    """Parse an as-rel string into an :class:`ASGraph`."""
    return _load(io.StringIO(text))
