"""AS business relationships and the Gao-Rexford preference model.

Interdomain links are annotated with the standard relationship taxonomy
(Gao 2001; Luckie et al. 2013):

* **customer-to-provider (c2p)** — the customer pays the provider for
  transit.  Stored once per link; the reverse direction is
  provider-to-customer (p2c).
* **peer-to-peer (p2p)** — settlement-free exchange of customer traffic.

The *relationship of a route* at an AS is the relationship of the neighbor
the route was learned from, seen from the AS's own point of view: a route
learned from a customer is a ``CUSTOMER`` route, and so on.  Gao-Rexford
local preference orders routes ``CUSTOMER > PEER > PROVIDER``.
"""

from __future__ import annotations

import enum

from ..errors import RelationshipError


class Relationship(enum.IntEnum):
    """Relationship of a neighbor (and of routes learned from it).

    Values are chosen so that *lower is more preferred*, matching the
    sort-key convention used by :mod:`repro.bgp.route`.
    """

    CUSTOMER = 0
    PEER = 1
    PROVIDER = 2

    @property
    def local_preference(self) -> int:
        """Conventional LocalPref value for routes with this relationship.

        Higher is better, mirroring real-world operator conventions
        (e.g. 300 for customer routes, 200 for peers, 100 for providers).
        """
        return {
            Relationship.CUSTOMER: 300,
            Relationship.PEER: 200,
            Relationship.PROVIDER: 100,
        }[self]

    @property
    def inverse(self) -> "Relationship":
        """Relationship as seen from the other end of the link."""
        if self is Relationship.CUSTOMER:
            return Relationship.PROVIDER
        if self is Relationship.PROVIDER:
            return Relationship.CUSTOMER
        return Relationship.PEER


#: CAIDA serialization codes used in ``as-rel`` files: ``-1`` marks a
#: provider-customer link (first AS is the provider), ``0`` a peering link.
CAIDA_P2C = -1
CAIDA_P2P = 0


def relationship_from_caida(code: int) -> Relationship:
    """Map a CAIDA as-rel code to the relationship of the *second* AS.

    In a CAIDA line ``a|b|-1`` the first AS ``a`` is the provider, so from
    ``a``'s point of view ``b`` is a ``CUSTOMER``.  ``a|b|0`` is peering.
    The returned value is the relationship of ``b`` as seen from ``a``.
    """
    if code == CAIDA_P2C:
        return Relationship.CUSTOMER
    if code == CAIDA_P2P:
        return Relationship.PEER
    raise RelationshipError(f"unknown CAIDA relationship code {code}")


def relationship_to_caida(relationship: Relationship) -> int:
    """Map a relationship (of the second AS, seen from the first) to CAIDA code."""
    if relationship is Relationship.CUSTOMER:
        return CAIDA_P2C
    if relationship is Relationship.PEER:
        return CAIDA_P2P
    raise RelationshipError(
        "CAIDA files store provider-customer links from the provider side; "
        "serialize PROVIDER relationships from the other endpoint"
    )


def export_allowed(learned_from: Relationship, export_to: Relationship) -> bool:
    """Gao-Rexford (valley-free) export rule.

    An AS exports routes learned from *customers* to everyone, and routes
    learned from *peers or providers* only to its customers.

    Args:
        learned_from: relationship of the neighbor the route was learned
            from (``CUSTOMER`` if the route came from a customer).  Routes
            originated by the AS itself should be treated as ``CUSTOMER``
            routes for export purposes (exported to everyone).
        export_to: relationship of the neighbor the route would be sent to.

    Returns:
        True if the export complies with the valley-free rule.
    """
    if learned_from is Relationship.CUSTOMER:
        return True
    return export_to is Relationship.CUSTOMER
