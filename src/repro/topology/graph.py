"""AS-level topology graph annotated with business relationships.

:class:`ASGraph` is the substrate every other subsystem builds on: the BGP
simulator propagates routes over it, the traceroute engine walks it, and
the analysis code computes AS-hop distances and customer cones from it.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, FrozenSet, Iterable, Iterator, List, Mapping, Set, Tuple

from ..errors import TopologyError
from ..types import ASN, validate_asn
from .relationships import Relationship


class ASGraph:
    """Undirected AS graph whose edges carry business relationships.

    Each link is stored from both endpoints with inverse relationship
    annotations, so ``graph.relationship(a, b)`` answers "what is ``b`` to
    ``a``?" in O(1).
    """

    def __init__(self) -> None:
        self._adjacency: Dict[ASN, Dict[ASN, Relationship]] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def add_as(self, asn: ASN) -> None:
        """Add an AS with no links.  Adding an existing AS is a no-op."""
        validate_asn(asn)
        self._adjacency.setdefault(asn, {})

    def add_link(self, a: ASN, b: ASN, relationship_of_b: Relationship) -> None:
        """Add a link between ``a`` and ``b``.

        Args:
            a: first endpoint.
            b: second endpoint.
            relationship_of_b: what ``b`` is to ``a`` — e.g.
                ``Relationship.PROVIDER`` means ``b`` provides transit to
                ``a``.

        Raises:
            TopologyError: for self-links or if the link already exists with
                a different relationship.
        """
        validate_asn(a)
        validate_asn(b)
        if a == b:
            raise TopologyError(f"self-link on AS {a}")
        self.add_as(a)
        self.add_as(b)
        existing = self._adjacency[a].get(b)
        if existing is not None and existing is not relationship_of_b:
            raise TopologyError(
                f"link {a}-{b} already annotated {existing.name}, "
                f"refusing to overwrite with {relationship_of_b.name}"
            )
        self._adjacency[a][b] = relationship_of_b
        self._adjacency[b][a] = relationship_of_b.inverse

    def remove_link(self, a: ASN, b: ASN) -> None:
        """Remove the link between ``a`` and ``b``.

        Raises:
            TopologyError: if the link does not exist.
        """
        if b not in self._adjacency.get(a, {}):
            raise TopologyError(f"no link {a}-{b} to remove")
        del self._adjacency[a][b]
        del self._adjacency[b][a]

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def __contains__(self, asn: ASN) -> bool:
        return asn in self._adjacency

    def __len__(self) -> int:
        return len(self._adjacency)

    def __iter__(self) -> Iterator[ASN]:
        return iter(self._adjacency)

    @property
    def ases(self) -> FrozenSet[ASN]:
        """All ASes in the graph."""
        return frozenset(self._adjacency)

    def num_links(self) -> int:
        """Number of (undirected) links."""
        return sum(len(nbrs) for nbrs in self._adjacency.values()) // 2

    def neighbors(self, asn: ASN) -> Mapping[ASN, Relationship]:
        """Neighbors of ``asn`` with their relationship seen from ``asn``."""
        try:
            return self._adjacency[asn]
        except KeyError:
            raise TopologyError(f"AS {asn} not in topology") from None

    def relationship(self, a: ASN, b: ASN) -> Relationship:
        """Relationship of ``b`` as seen from ``a``.

        Raises:
            TopologyError: if ``a`` is unknown or not linked to ``b``.
        """
        neighbors = self.neighbors(a)
        try:
            return neighbors[b]
        except KeyError:
            raise TopologyError(f"no link between {a} and {b}") from None

    def has_link(self, a: ASN, b: ASN) -> bool:
        """Return True if ``a`` and ``b`` are directly connected."""
        return b in self._adjacency.get(a, {})

    def customers(self, asn: ASN) -> List[ASN]:
        """Direct customers of ``asn``."""
        return self._neighbors_with(asn, Relationship.CUSTOMER)

    def peers(self, asn: ASN) -> List[ASN]:
        """Settlement-free peers of ``asn``."""
        return self._neighbors_with(asn, Relationship.PEER)

    def providers(self, asn: ASN) -> List[ASN]:
        """Transit providers of ``asn``."""
        return self._neighbors_with(asn, Relationship.PROVIDER)

    def _neighbors_with(self, asn: ASN, relationship: Relationship) -> List[ASN]:
        return sorted(
            neighbor
            for neighbor, rel in self.neighbors(asn).items()
            if rel is relationship
        )

    def degree(self, asn: ASN) -> int:
        """Total number of links of ``asn``."""
        return len(self.neighbors(asn))

    def tier1_ases(self) -> FrozenSet[ASN]:
        """ASes with no providers (the transit-free top of the hierarchy)."""
        return frozenset(
            asn for asn in self._adjacency if not self.providers(asn)
        )

    def stub_ases(self) -> FrozenSet[ASN]:
        """ASes with no customers (the edge of the hierarchy)."""
        return frozenset(
            asn for asn in self._adjacency if not self.customers(asn)
        )

    # ------------------------------------------------------------------
    # Derived structures
    # ------------------------------------------------------------------

    def customer_cone(self, asn: ASN) -> FrozenSet[ASN]:
        """Customer cone of ``asn``: itself plus all recursive customers.

        Matches CAIDA's definition used by the paper to characterize
        coverage ("73% of ASes with customer cone larger than 300 ASes").
        """
        if asn not in self._adjacency:
            raise TopologyError(f"AS {asn} not in topology")
        cone: Set[ASN] = {asn}
        frontier = deque([asn])
        while frontier:
            current = frontier.popleft()
            for customer in self.customers(current):
                if customer not in cone:
                    cone.add(customer)
                    frontier.append(customer)
        return frozenset(cone)

    def hop_distances(self, sources: Iterable[ASN]) -> Dict[ASN, int]:
        """Shortest AS-hop distance from the nearest of ``sources``.

        Plain BFS over links (ignoring routing policy), matching the
        paper's Figure 7 metric: distance, in AS-hops, between an AS and
        the closest announcement location.
        """
        distances: Dict[ASN, int] = {}
        frontier: deque = deque()
        for source in sources:
            if source not in self._adjacency:
                raise TopologyError(f"source AS {source} not in topology")
            distances[source] = 0
            frontier.append(source)
        while frontier:
            current = frontier.popleft()
            next_distance = distances[current] + 1
            for neighbor in self._adjacency[current]:
                if neighbor not in distances:
                    distances[neighbor] = next_distance
                    frontier.append(neighbor)
        return distances

    def connected_component(self, asn: ASN) -> FrozenSet[ASN]:
        """All ASes reachable from ``asn`` over any links."""
        return frozenset(self.hop_distances([asn]))

    def links(self) -> Iterator[Tuple[ASN, ASN, Relationship]]:
        """Iterate links once each as ``(a, b, relationship_of_b)`` with a < b."""
        for a in sorted(self._adjacency):
            for b, rel in sorted(self._adjacency[a].items()):
                if a < b:
                    yield a, b, rel

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------

    def validate(self) -> None:
        """Check internal consistency and hierarchy sanity.

        Raises:
            TopologyError: on asymmetric links, provider cycles, or a
                disconnected graph (when non-empty).
        """
        for a, nbrs in self._adjacency.items():
            for b, rel in nbrs.items():
                back = self._adjacency.get(b, {}).get(a)
                if back is not rel.inverse:
                    raise TopologyError(
                        f"asymmetric link {a}-{b}: {rel.name} vs {back}"
                    )
        self._check_no_provider_cycles()
        if self._adjacency:
            first = next(iter(self._adjacency))
            component = self.connected_component(first)
            if len(component) != len(self._adjacency):
                missing = len(self._adjacency) - len(component)
                raise TopologyError(f"topology is disconnected ({missing} ASes unreachable)")

    def _check_no_provider_cycles(self) -> None:
        """Detect cycles in the customer→provider digraph (forbidden).

        A provider cycle (A provides for B provides for ... provides for A)
        breaks the hierarchy assumption behind valley-free routing.
        """
        state: Dict[ASN, int] = {}  # 0 = visiting, 1 = done
        for start in self._adjacency:
            if start in state:
                continue
            stack: List[Tuple[ASN, Iterator[ASN]]] = [
                (start, iter(self.providers(start)))
            ]
            state[start] = 0
            while stack:
                node, providers = stack[-1]
                advanced = False
                for provider in providers:
                    seen = state.get(provider)
                    if seen == 0:
                        raise TopologyError(
                            f"provider cycle involving AS {provider}"
                        )
                    if seen is None:
                        state[provider] = 0
                        stack.append((provider, iter(self.providers(provider))))
                        advanced = True
                        break
                if not advanced:
                    state[node] = 1
                    stack.pop()

    def copy(self) -> "ASGraph":
        """Deep copy of the graph."""
        clone = ASGraph()
        for asn, nbrs in self._adjacency.items():
            clone._adjacency[asn] = dict(nbrs)
        return clone
