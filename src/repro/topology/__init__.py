"""AS-level topology substrate: graphs, relationships, generation, I/O."""

from .geography import (
    DEFAULT_REGION_WEIGHTS,
    REGIONS,
    GeographyModel,
    region_distance,
)
from .graph import ASGraph
from .generator import GeneratedTopology, TopologyParams, generate_topology
from .peering import (
    PAPER_MUXES,
    PEERING_ASN,
    OriginNetwork,
    PeeringLink,
    attach_origin,
)
from .relationships import Relationship, export_allowed
from .serialization import dump_as_rel, dumps_as_rel, load_as_rel, loads_as_rel

__all__ = [
    "ASGraph",
    "GeographyModel",
    "REGIONS",
    "DEFAULT_REGION_WEIGHTS",
    "region_distance",
    "GeneratedTopology",
    "TopologyParams",
    "generate_topology",
    "OriginNetwork",
    "PeeringLink",
    "attach_origin",
    "PAPER_MUXES",
    "PEERING_ASN",
    "Relationship",
    "export_allowed",
    "load_as_rel",
    "loads_as_rel",
    "dump_as_rel",
    "dumps_as_rel",
]
