"""Synthetic Internet-like AS topology generation.

The paper evaluates on the real Internet (1,885 ASes observed).  Offline,
we substitute a seeded synthetic topology with the structural properties
that matter for catchment behaviour:

* a small transit-free *tier-1 clique* at the top,
* a middle tier of transit providers attached preferentially (heavy-tailed
  degree distribution),
* a large edge of stub ASes, mostly single- or dual-homed,
* settlement-free peering edges concentrated in the middle (IXP-style).

The generator is fully deterministic given a seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..errors import TopologyError
from ..types import ASN
from .graph import ASGraph
from .relationships import Relationship


@dataclass(frozen=True)
class TopologyParams:
    """Knobs for :func:`generate_topology`.

    Attributes:
        num_tier1: size of the transit-free clique at the top.
        num_transit: number of middle-tier transit ASes.
        num_stub: number of edge (stub) ASes.
        transit_provider_choices: (min, max) providers per transit AS.
        stub_provider_choices: (min, max) providers per stub AS.
        transit_peering_probability: probability that a pair of same-tier
            transit ASes peer (evaluated over a random sample of pairs).
        stub_multihome_fraction: fraction of stubs homed to two providers.
        seed: PRNG seed; same seed ⇒ identical topology.
    """

    num_tier1: int = 8
    num_transit: int = 120
    num_stub: int = 600
    transit_provider_choices: Sequence[int] = (1, 3)
    stub_provider_choices: Sequence[int] = (1, 2)
    transit_peering_probability: float = 0.08
    stub_multihome_fraction: float = 0.35
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_tier1 < 1:
            raise TopologyError("need at least one tier-1 AS")
        if self.num_transit < 0 or self.num_stub < 0:
            raise TopologyError("AS counts must be non-negative")
        lo, hi = self.transit_provider_choices
        if not 1 <= lo <= hi:
            raise TopologyError("transit provider choices must satisfy 1 <= min <= max")
        lo, hi = self.stub_provider_choices
        if not 1 <= lo <= hi:
            raise TopologyError("stub provider choices must satisfy 1 <= min <= max")
        if not 0.0 <= self.transit_peering_probability <= 1.0:
            raise TopologyError("transit_peering_probability must be in [0, 1]")
        if not 0.0 <= self.stub_multihome_fraction <= 1.0:
            raise TopologyError("stub_multihome_fraction must be in [0, 1]")

    @property
    def total_ases(self) -> int:
        """Total number of ASes the generated topology will contain."""
        return self.num_tier1 + self.num_transit + self.num_stub


#: First ASN assigned to each tier; gaps make tiers recognizable in debug
#: output but carry no semantics.
TIER1_BASE_ASN = 10
TRANSIT_BASE_ASN = 1000
STUB_BASE_ASN = 10000


@dataclass
class GeneratedTopology:
    """A generated topology plus the tier assignment used to build it."""

    graph: ASGraph
    tier1: List[ASN] = field(default_factory=list)
    transit: List[ASN] = field(default_factory=list)
    stubs: List[ASN] = field(default_factory=list)
    params: Optional[TopologyParams] = None

    @property
    def all_ases(self) -> List[ASN]:
        """All ASes in tier order (tier-1 first)."""
        return self.tier1 + self.transit + self.stubs


def generate_topology(params: Optional[TopologyParams] = None) -> GeneratedTopology:
    """Generate a synthetic Internet-like topology.

    The construction proceeds top-down: the tier-1 clique, then transit
    ASes attached to providers drawn preferentially by current degree
    (yielding a heavy-tailed degree distribution), then stubs attached to
    transit providers.  Peering edges are added between transit ASes.

    Returns:
        A :class:`GeneratedTopology` whose graph passes
        :meth:`ASGraph.validate`.
    """
    params = params or TopologyParams()
    rng = random.Random(params.seed)
    graph = ASGraph()

    tier1 = [TIER1_BASE_ASN + i for i in range(params.num_tier1)]
    for asn in tier1:
        graph.add_as(asn)
    for i, a in enumerate(tier1):
        for b in tier1[i + 1:]:
            graph.add_link(a, b, Relationship.PEER)

    transit = [TRANSIT_BASE_ASN + i for i in range(params.num_transit)]
    lo, hi = params.transit_provider_choices
    for asn in transit:
        candidates = tier1 + [t for t in transit if t in graph and t != asn]
        provider_count = min(rng.randint(lo, hi), len(candidates))
        for provider in _preferential_sample(rng, graph, candidates, provider_count):
            graph.add_link(asn, provider, Relationship.PROVIDER)

    _add_transit_peering(rng, graph, transit, params.transit_peering_probability)

    stubs = [STUB_BASE_ASN + i for i in range(params.num_stub)]
    slo, shi = params.stub_provider_choices
    provider_pool = transit if transit else tier1
    for asn in stubs:
        if rng.random() < params.stub_multihome_fraction:
            provider_count = min(max(2, slo), len(provider_pool))
        else:
            provider_count = min(rng.randint(slo, shi), len(provider_pool))
        for provider in _preferential_sample(rng, graph, provider_pool, provider_count):
            graph.add_link(asn, provider, Relationship.PROVIDER)

    graph.validate()
    return GeneratedTopology(
        graph=graph, tier1=tier1, transit=transit, stubs=stubs, params=params
    )


def _preferential_sample(
    rng: random.Random, graph: ASGraph, candidates: Sequence[ASN], count: int
) -> List[ASN]:
    """Sample ``count`` distinct candidates with probability ∝ degree + 1.

    The ``+ 1`` keeps zero-degree ASes reachable; sampling without
    replacement is done by repeated weighted draws over the shrinking pool.
    """
    if count >= len(candidates):
        return list(candidates)
    pool = list(candidates)
    chosen: List[ASN] = []
    for _ in range(count):
        weights = [graph.degree(asn) + 1 for asn in pool]
        pick = rng.choices(range(len(pool)), weights=weights, k=1)[0]
        chosen.append(pool.pop(pick))
    return chosen


def _add_transit_peering(
    rng: random.Random, graph: ASGraph, transit: Sequence[ASN], probability: float
) -> None:
    """Add IXP-style peering edges between transit ASes.

    Each unordered pair peers independently with ``probability``, unless a
    transit link between them already exists.
    """
    if probability <= 0.0:
        return
    for i, a in enumerate(transit):
        for b in transit[i + 1:]:
            if graph.has_link(a, b):
                continue
            if rng.random() < probability:
                graph.add_link(a, b, Relationship.PEER)
