"""Geographic regions and IGP-proximity (hot-potato) modeling.

The paper's §III-A-b notes that BGP tiebreakers *after* AS-path length —
IGP costs in particular — "cannot be controlled ... and thus cannot be
employed by the origin for route manipulation", and §IV-c observes that
"routers in the US and Europe may choose different routes".  To let
experiments probe how much geography-driven tie-breaking helps or hurts
the techniques, this module assigns every AS a coarse region and exposes
an inter-region distance that the policy model can use as an IGP-cost
stand-in: ties between equally-long routes then resolve toward the
geographically closest neighbor (hot-potato) instead of an arbitrary
router-state tiebreak.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Optional, Tuple

from ..types import ASN

#: Coarse regions, ordered; the distance matrix below indexes this order.
REGIONS: Tuple[str, ...] = ("NA", "SA", "EU", "AF", "AS", "OC")

#: Rough relative propagation distance between regions (arbitrary units,
#: symmetric, zero diagonal) — intercontinental paths dominate IGP cost at
#: this granularity.
_REGION_DISTANCE: Tuple[Tuple[int, ...], ...] = (
    #  NA  SA  EU  AF  AS  OC
    (0, 2, 3, 4, 5, 5),  # NA
    (2, 0, 4, 3, 6, 6),  # SA
    (3, 4, 0, 2, 3, 6),  # EU
    (4, 3, 2, 0, 4, 6),  # AF
    (5, 6, 3, 4, 0, 3),  # AS
    (5, 6, 6, 6, 3, 0),  # OC
)

#: Default share of ASes per region, loosely following registry counts.
DEFAULT_REGION_WEIGHTS: Mapping[str, float] = {
    "NA": 0.30,
    "EU": 0.30,
    "AS": 0.18,
    "SA": 0.12,
    "AF": 0.06,
    "OC": 0.04,
}


class GeographyModel:
    """Region assignment plus inter-region distances.

    Args:
        region_of: explicit AS → region mapping.

    Raises:
        ValueError: on unknown region names.
    """

    def __init__(self, region_of: Mapping[ASN, str]) -> None:
        for asn, region in region_of.items():
            if region not in REGIONS:
                raise ValueError(f"unknown region {region!r} for AS {asn}")
        self._region_of: Dict[ASN, str] = dict(region_of)

    @classmethod
    def random(
        cls,
        ases: Iterable[ASN],
        seed: int = 0,
        weights: Optional[Mapping[str, float]] = None,
    ) -> "GeographyModel":
        """Assign regions at random with the given (or default) shares."""
        weights = dict(weights or DEFAULT_REGION_WEIGHTS)
        unknown = set(weights) - set(REGIONS)
        if unknown:
            raise ValueError(f"unknown regions in weights: {sorted(unknown)}")
        names = sorted(weights)
        values = [weights[name] for name in names]
        rng = random.Random(seed)
        assignment = {
            asn: rng.choices(names, weights=values, k=1)[0]
            for asn in sorted(ases)
        }
        return cls(assignment)

    def region_of(self, asn: ASN) -> str:
        """Region of ``asn``.

        Raises:
            KeyError: for ASes without an assignment.
        """
        return self._region_of[asn]

    def knows(self, asn: ASN) -> bool:
        """True if ``asn`` has a region assignment."""
        return asn in self._region_of

    def distance(self, a: ASN, b: ASN) -> int:
        """Inter-region distance between two ASes (0 when co-located).

        ASes without assignments are treated as distance 0 to everyone —
        geography then simply does not influence their ties.
        """
        region_a = self._region_of.get(a)
        region_b = self._region_of.get(b)
        if region_a is None or region_b is None:
            return 0
        return _REGION_DISTANCE[REGIONS.index(region_a)][REGIONS.index(region_b)]

    def census(self) -> Dict[str, int]:
        """Number of ASes per region."""
        counts = {region: 0 for region in REGIONS}
        for region in self._region_of.values():
            counts[region] += 1
        return counts


def region_distance(region_a: str, region_b: str) -> int:
    """Distance between two region names.

    Raises:
        ValueError: for unknown regions.
    """
    try:
        index_a = REGIONS.index(region_a)
        index_b = REGIONS.index(region_b)
    except ValueError as exc:
        raise ValueError(f"unknown region in ({region_a!r}, {region_b!r})") from exc
    return _REGION_DISTANCE[index_a][index_b]
