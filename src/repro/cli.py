"""Command-line front end: ``spooftrack`` (also ``python -m repro``).

Subcommands:

* ``figures`` — reproduce paper figures and print their data series.
* ``tables`` — print Table I (testbed PoPs) and Table II (taxonomy).
* ``track`` — run the end-to-end localization pipeline on a synthetic
  attack and print the report.
* ``live`` — replay a synthetic attack through the online traceback
  service (``repro.live``) with rolling per-window attribution.
* ``fleet`` — multiplex many tenants' concurrent attack replays through
  the multi-tenant runtime (``repro.fleet``) with fair-share dispatch,
  scripted crash/drain/evict events, and a rolling per-tenant table.
* ``soak`` — long-horizon soak campaign (``repro.soak``): epochs of
  whole-process restarts, seeded kills, checkpoint corruption, fault
  escalation, and checkpoint schema alternation, with resource ceilings
  asserted per epoch and the final digest verified against an
  uninterrupted reference run.
* ``chaos`` — sweep a fault plan across intensities and print an
  accuracy-vs-fault-rate table (``repro.faults``).
* ``profile`` — run the pipeline under the observability layer's
  profiler and print per-phase timings plus a top-K hotspot table.
* ``dash`` — ASCII live dashboard: render the observability event
  stream, either attached to a served ``/events`` endpoint or from a
  seeded local replay.
* ``timeline`` — post-mortem forensics: merge span traces, flight
  bundles, and checkpoint directories into one causally ordered,
  digest-stable timeline (``repro.obs.timeline``).
* ``bench-check`` — compare fresh ``benchmarks/BENCH_*.json`` artifacts
  against the recorded baseline history; non-zero exit on regression.
* ``experiments`` — regenerate the EXPERIMENTS.md body from a fresh run.

``track``, ``live``, ``fleet``, and ``chaos`` accept ``--trace PATH``
(JSONL span tree with deterministic span ids), ``--metrics PATH``
(Prometheus-format counter/gauge/histogram dump), ``--serve PORT``
(threaded HTTP exporter: ``/metrics``, ``/healthz``, ``/readyz``,
``/manifest``, ``/traces``, ``/timeline``, SSE ``/events``, and — in
fleet mode — ``/tenants``), ``--log-json`` (structured JSON-lines
operational logging instead of bare stderr), and ``--flight-dir DIR``
(arm the black-box flight recorder).  ``track``, ``live``, and
``fleet`` also accept ``--fault-plan`` (``chaos`` sweeps its own
``--plan``).
"""

from __future__ import annotations

import argparse
import sys
import time
from dataclasses import replace
from typing import List, Optional, Sequence

from .analysis.figures import FIGURE_RUNNERS, EvaluationRun
from .analysis.report import figure_markdown, render_figure
from .analysis.tables import table1, table2
from .core.pipeline import SpoofTracker, TestbedSpec, build_testbed
from .errors import FaultInjectionError
from .faults import BUNDLED_PLANS, FaultInjector, load_fault_plan
from .obs import (
    Logbook,
    Observability,
    ObsServer,
    SloWatchdog,
    Stopwatch,
    build_manifest,
    install_flight_signal,
)
from .spoof.sources import PLACEMENT_DISTRIBUTIONS, make_placement
from .topology.generator import TopologyParams

import random

#: Topology scales selectable from the command line.
SCALES = {
    "small": TopologyParams(num_tier1=6, num_transit=60, num_stub=300),
    "medium": TopologyParams(num_tier1=8, num_transit=120, num_stub=600),
    "paper": TopologyParams(num_tier1=10, num_transit=220, num_stub=1600),
}


def _build_run(args: argparse.Namespace) -> EvaluationRun:
    params = replace(SCALES[args.scale], seed=args.seed)
    testbed = build_testbed(seed=args.seed, topology_params=params)
    return EvaluationRun(
        testbed=testbed,
        seed=args.seed,
        max_configs=args.max_configs,
        measured=args.measured,
        workers=args.workers,
    )


def _cmd_figures(args: argparse.Namespace) -> int:
    wanted = args.ids or sorted(FIGURE_RUNNERS)
    unknown = [figure_id for figure_id in wanted if figure_id not in FIGURE_RUNNERS]
    if unknown:
        print(f"unknown figure ids: {unknown}; known: {sorted(FIGURE_RUNNERS)}")
        return 2
    # Monotonic interval (a wall-clock adjustment mid-run used to be able
    # to skew or even negate this timing when it read time.time()).
    stopwatch = Stopwatch()
    run = _build_run(args)
    print(
        f"# evaluation run: {len(run.schedule)} configurations over "
        f"{len(run.universe)} ASes ({stopwatch.elapsed():.1f}s, "
        f"{run.engine.stats.summary()})",
        file=sys.stderr,
    )
    for figure_id in wanted:
        result = FIGURE_RUNNERS[figure_id](run)
        print(render_figure(result))
        if args.plot:
            from .analysis.ascii_plot import plot_figure

            print()
            print(plot_figure(result))
        print()
    run.engine.close()
    return 0


def _cmd_tables(args: argparse.Namespace) -> int:
    testbed = build_testbed(seed=args.seed, topology_params=SCALES[args.scale])
    print(table1(testbed).render())
    print()
    print(table2().render())
    return 0


def _make_injector(args: argparse.Namespace):
    """Build a :class:`FaultInjector` from ``--fault-plan`` (or None)."""
    source = getattr(args, "fault_plan", None)
    if not source:
        return None
    return FaultInjector(load_fault_plan(source))


#: Recorders armed by :func:`_make_obs` this invocation, so the crash
#: handler in :func:`main` can dump black boxes on an unhandled error.
_ACTIVE_FLIGHTS: List = []


def _make_obs(
    args: argparse.Namespace, command: str, profile: bool = False
) -> Optional[Observability]:
    """An armed :class:`Observability` bundle, or None when not asked for.

    Unarmed runs (no ``--trace``/``--metrics``/``--serve``/``--log-json``
    /``--flight-dir``/profiling) return None so the pipeline's
    instrumentation guards stay on their no-op path.  ``--flight-dir``
    additionally arms a run-wide flight recorder (riding the bus,
    logbook, and tracer), binds SIGUSR1 to it, and registers it for the
    crash handler in :func:`main`.
    """
    armed = (
        getattr(args, "trace", None)
        or getattr(args, "metrics", None)
        or profile
        or getattr(args, "serve", None) is not None
        or getattr(args, "log_json", False)
        or getattr(args, "flight_dir", None)
    )
    if not armed:
        return None
    obs = Observability.for_run(command, profile=profile)
    if obs.logbook is not None:
        obs.logbook.json_mode = bool(getattr(args, "log_json", False))
    flight_dir = getattr(args, "flight_dir", None)
    if flight_dir:
        recorder = obs.arm_flight(command, directory=flight_dir)
        install_flight_signal(recorder)
        _ACTIVE_FLIGHTS.append(recorder)
    return obs


def _logbook_for(
    args: argparse.Namespace, obs: Optional[Observability]
) -> Logbook:
    """The run's logbook: the obs bundle's when armed, else a bare one.

    Either way operational chatter flows through one leveled sink, and
    ``--log-json`` switches it to structured JSON lines.
    """
    if obs is not None and obs.logbook is not None:
        return obs.logbook
    return Logbook(json_mode=bool(getattr(args, "log_json", False)))


def _wire_faults(injector, obs: Optional[Observability], log: Logbook) -> None:
    """Forward fired faults onto the bus (and the debug log) as they land."""
    if injector is None:
        return

    def on_fault(kind: str, count: int) -> None:
        if obs is not None and obs.bus is not None:
            obs.bus.publish("fault", fault_kind=kind, count=count)
        log.debug(f"fault fired: {kind} x{count}", event="fault", kind=kind)

    injector.log.listeners.append(on_fault)


def _start_server(
    args: argparse.Namespace,
    obs: Optional[Observability],
    log: Logbook,
    manifest=None,
    health_source=None,
    slo_rules=None,
):
    """Start the ``--serve`` exporter (or return None when not asked for)."""
    port = getattr(args, "serve", None)
    if port is None or obs is None:
        return None
    watchdog = (
        SloWatchdog(slo_rules, registry=obs.registry)
        if slo_rules is not None
        else SloWatchdog(registry=obs.registry)
    )
    # An armed flight recorder turns every SLO breach into a black box.
    watchdog.flight = obs.flight
    if obs.bus is not None:
        obs.bus.attach(watchdog.observe)
    server = ObsServer(
        obs=obs,
        manifest=manifest,
        health_source=health_source,
        watchdog=watchdog,
        port=port,
        flight_dir=getattr(args, "flight_dir", None) or "",
        checkpoint_dir=getattr(args, "checkpoint_dir", None) or "",
    )
    server.start()
    log.info(
        f"serving observability on {server.url}",
        event="serve",
        port=server.port,
    )
    return server


def _finish_server(
    args: argparse.Namespace,
    server,
    obs: Optional[Observability],
    log: Logbook,
) -> None:
    """Publish run completion, honour ``--serve-linger``, stop serving."""
    if server is None:
        return
    if obs is not None and obs.bus is not None:
        obs.bus.publish("report", command=getattr(args, "command", ""))
    linger = float(getattr(args, "serve_linger", 0.0) or 0.0)
    if linger > 0:
        log.info(
            f"run complete; serving {server.url} for {linger:g}s more",
            event="serve_linger",
        )
        time.sleep(linger)
    server.stop()
    if obs is not None and obs.bus is not None:
        obs.bus.close()


def _manifest_for(
    args: argparse.Namespace, command: str, injector=None, **config
):
    """A :class:`~repro.obs.RunManifest` for this invocation."""
    return build_manifest(
        command,
        seed=args.seed,
        scale=args.scale,
        workers=getattr(args, "workers", 1),
        config=config,
        fault_plan=(
            injector.plan.as_serializable() if injector is not None else None
        ),
    )


def _export_obs(
    args: argparse.Namespace,
    obs: Optional[Observability],
    log: Optional[Logbook] = None,
) -> None:
    """Write ``--trace`` / ``--metrics`` artifacts and announce them."""
    if obs is None:
        return
    log = log if log is not None else _logbook_for(args, obs)
    trace = getattr(args, "trace", None)
    if trace and obs.tracer is not None:
        obs.tracer.write_jsonl(trace)
        log.info(f"wrote trace {trace}", event="export", path=trace)
    metrics = getattr(args, "metrics", None)
    if metrics and obs.registry is not None:
        obs.registry.write_prometheus(metrics)
        log.info(f"wrote metrics {metrics}", event="export", path=metrics)


def _cmd_track(args: argparse.Namespace) -> int:
    injector = _make_injector(args)
    obs = _make_obs(args, "track")
    log = _logbook_for(args, obs)
    _wire_faults(injector, obs, log)
    manifest = _manifest_for(
        args,
        "track",
        injector=injector,
        max_configs=args.max_configs,
        measured=args.measured,
        distribution=args.distribution,
        sources=args.sources,
        split_threshold=args.split_threshold,
        strategy=args.strategy,
    )
    health = {"report": None}
    server = _start_server(
        args, obs, log, manifest=manifest,
        health_source=lambda: health["report"],
    )
    testbed = build_testbed(seed=args.seed, topology_params=SCALES[args.scale])
    tracker = SpoofTracker(
        testbed, workers=args.workers, injector=injector, obs=obs
    )
    if server is not None:
        server.set_ready()
    rng = random.Random(args.seed + 1)
    candidate_ases = sorted(testbed.topology.stubs or testbed.graph.ases)
    placement = make_placement(
        args.distribution, candidate_ases, args.sources, rng
    )
    try:
        report = tracker.run(
            max_configs=args.max_configs,
            placement=placement,
            measured=args.measured,
            split_threshold=args.split_threshold,
            strategy=args.strategy,
        )
    finally:
        tracker.engine.close()
    report.manifest = manifest
    health["report"] = report.resilience
    _export_obs(args, obs, log)
    _finish_server(args, server, obs, log)
    print(report.summary())
    true_sources = ", ".join(str(asn) for asn in sorted(placement.spoofing_ases))
    print(f"ground-truth source ASes: {true_sources}")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    from .strategy import available_strategies, compare_strategies, strategy_class

    if args.strategies:
        names = [name.strip() for name in args.strategies.split(",") if name.strip()]
    else:
        names = available_strategies()
    for name in names:
        strategy_class(name)  # fail fast, before the measurement pass
    obs = _make_obs(args, "compare")
    log = _logbook_for(args, obs)
    manifest = _manifest_for(
        args,
        "compare",
        max_configs=args.max_configs,
        strategies=",".join(names),
    )
    server = _start_server(args, obs, log, manifest=manifest)
    testbed = build_testbed(seed=args.seed, topology_params=SCALES[args.scale])
    if server is not None:
        server.set_ready()
    report = compare_strategies(
        testbed,
        strategies=names,
        max_configs=args.max_configs,
        workers=args.workers,
        obs=obs,
    )
    _export_obs(args, obs, log)
    _finish_server(args, server, obs, log)
    print(
        f"racing {len(report.outcomes)} strategies over "
        f"{report.candidate_configs} candidate configurations, "
        f"{report.universe_size} sources (seed {report.seed})"
    )
    if report.engine_stats is not None:
        print(f"shared measurement pass  : {report.engine_stats.summary()}")
    print()
    print(report.table())
    if args.json:
        report.write_json(args.json)
        log.info(f"wrote {args.json}", event="export", path=args.json)
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    obs = Observability.for_run("profile", profile=True)
    testbed = build_testbed(seed=args.seed, topology_params=SCALES[args.scale])
    tracker = SpoofTracker(testbed, workers=args.workers, obs=obs)
    rng = random.Random(args.seed + 1)
    candidate_ases = sorted(testbed.topology.stubs or testbed.graph.ases)
    placement = make_placement(
        args.distribution, candidate_ases, args.sources, rng
    )
    try:
        report = tracker.run(
            max_configs=args.max_configs,
            placement=placement,
            measured=args.measured,
        )
    finally:
        tracker.engine.close()
    report.manifest = _manifest_for(
        args,
        "profile",
        max_configs=args.max_configs,
        measured=args.measured,
    )
    _export_obs(args, obs, _logbook_for(args, obs))
    assert obs.timer is not None and obs.profiler is not None
    print("# per-phase wall time")
    print(obs.timer.table())
    print()
    print(f"# top {args.top} hotspots (engine fixpoints + NNLS solves)")
    print(obs.profiler.hotspot_table(args.top))
    print()
    print(report.summary())
    return 0


def _cmd_headline(args: argparse.Namespace) -> int:
    from .analysis.headline import headline_metrics, render_headline

    run = _build_run(args)
    print(render_headline(headline_metrics(run)))
    run.engine.close()
    return 0


def _cmd_dataset(args: argparse.Namespace) -> int:
    from .data import Dataset, PathDataset

    run = _build_run(args)
    dataset = Dataset.from_catchment_history(
        run.testbed.origin.link_ids,
        run.schedule,
        run.catchment_history,
        meta={
            "seed": args.seed,
            "scale": args.scale,
            "ases": len(run.testbed.graph),
            "universe": len(run.universe),
        },
    )
    dataset.save(args.output)
    print(
        f"wrote {args.output}: {len(dataset)} configurations over "
        f"{len(dataset.sources())} sources"
    )
    if args.paths:
        # Cache hits: the run already simulated its schedule.
        outcomes = run.engine.simulate_many(run.schedule)
        path_dataset = PathDataset.from_outcomes(outcomes)
        path_dataset.save(args.paths)
        diversity = path_dataset.route_diversity()
        mean_diversity = sum(diversity.values()) / len(diversity)
        print(
            f"wrote {args.paths}: forwarding paths for {len(path_dataset)} "
            f"configurations (mean {mean_diversity:.2f} routes/source)"
        )
    run.engine.close()
    return 0


def _parse_churn(text: str) -> tuple:
    """Parse a ``WINDOW:DRIFT`` churn event specification."""
    try:
        window_text, drift_text = text.split(":", 1)
        return (int(window_text), float(drift_text))
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"churn event {text!r} is not WINDOW:DRIFT (e.g. 12:0.3)"
        )


def _cmd_live(args: argparse.Namespace) -> int:
    from .analysis.live import render_window, render_window_table
    from .live import LiveTracebackService, ReplayScenario, load_checkpoint

    obs = None
    injector = None
    server = None
    log = _logbook_for(args, None)
    if args.resume:
        # Resumed services rebuild mid-run state; the premeasure span and
        # controller counters are gone, so tracing starts fresh runs only.
        service = load_checkpoint(args.resume, workers=args.workers)
    else:
        obs = _make_obs(args, "live")
        log = _logbook_for(args, obs)
        injector = _make_injector(args)
        _wire_faults(injector, obs, log)
        if args.checkpoint_every > 0 and not args.checkpoint:
            log.error("--checkpoint-every needs --checkpoint PATH")
            return 2
        scenario = ReplayScenario(
            seed=args.seed,
            distribution=args.distribution,
            num_sources=args.sources,
            max_configs=args.max_configs,
            window_minutes=args.window_minutes,
            batches_per_window=args.batches_per_window,
            queue_capacity=args.queue_capacity,
            drop_policy=args.drop_policy,
            adaptive=not args.in_order,
            strategy=args.strategy,
            min_configs=args.min_configs,
            stop_entropy=args.stop_entropy,
            stop_volume_share=args.stop_volume_share,
            churn_events=tuple(args.churn),
            checkpoint_every=args.checkpoint_every,
            checkpoint_path=args.checkpoint or "",
            packets_per_window=args.packets_per_window,
            nnls_stride=args.nnls_stride,
        )
        params = replace(SCALES[args.scale], seed=args.seed)
        spec = TestbedSpec(seed=args.seed, topology_params=params)
        manifest = _manifest_for(
            args,
            "live",
            injector=injector,
            max_configs=args.max_configs,
            distribution=args.distribution,
            sources=args.sources,
            window_minutes=args.window_minutes,
            adaptive=not args.in_order,
        )
        # The exporter comes up before the (slow) premeasure so /healthz
        # answers from the first moment of the run; /readyz flips once
        # the service finishes constructing.
        holder = {"service": None}

        def _health():
            svc = holder["service"]
            return svc._resilience_report() if svc is not None else None

        server = _start_server(
            args, obs, log, manifest=manifest, health_source=_health
        )
        service = LiveTracebackService(
            scenario=scenario,
            spec=spec,
            workers=args.workers,
            injector=injector,
            obs=obs,
        )
        holder["service"] = service
        if server is not None:
            server.set_ready()
    on_window = None
    if not args.quiet:

        def on_window(stats):
            log.info(
                render_window(stats),
                event="window",
                window=stats.window_index,
            )

    try:
        report = service.run(on_window=on_window)
        if args.checkpoint and args.checkpoint_every == 0:
            service.checkpoint(args.checkpoint)
            log.info(
                f"wrote final checkpoint {args.checkpoint}",
                event="checkpoint",
                path=args.checkpoint,
            )
    finally:
        service.close()
    if not args.resume:
        report.manifest = manifest
    _export_obs(args, obs, log)
    _finish_server(args, server, obs, log)
    print(report.summary())
    print()
    print(render_window_table(report.windows, every=args.table_every))
    true_sources = ", ".join(
        str(asn) for asn in sorted(report.placement.spoofing_ases)
    )
    print(f"ground-truth source ASes: {true_sources}")
    return 0


def _parse_indexed_minute(text: str) -> tuple:
    """Parse an ``ATTACK:MINUTE`` fleet control specification."""
    try:
        index_text, minute_text = text.split(":", 1)
        return (int(index_text), float(minute_text))
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"fleet event {text!r} is not ATTACK:MINUTE (e.g. 2:240)"
        )


def _parse_quota(text: str) -> tuple:
    """Parse a ``TENANT:WEIGHT`` fair-share quota specification."""
    try:
        tenant, weight_text = text.split(":", 1)
        weight = float(weight_text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"quota {text!r} is not TENANT:WEIGHT (e.g. tenant-00:2.0)"
        )
    if not tenant or weight <= 0:
        raise argparse.ArgumentTypeError(
            f"quota {text!r} needs a tenant name and a positive weight"
        )
    return (tenant, weight)


def _cmd_fleet(args: argparse.Namespace) -> int:
    from .analysis.fleet import render_fleet_summary, render_fleet_table
    from .analysis.live import render_window
    from .fleet import (
        CRASH,
        DRAIN,
        EVICT,
        FleetEvent,
        FleetRuntime,
        FleetSpec,
        scripted_stream,
    )

    obs = _make_obs(args, "fleet")
    log = _logbook_for(args, obs)
    if args.checkpoint_every > 0 and not args.checkpoint_dir:
        log.error("--checkpoint-every needs --checkpoint-dir PATH")
        return 2
    params = replace(SCALES[args.scale], seed=args.seed)
    spec = FleetSpec(
        seed=args.seed,
        tenants=args.tenants,
        attacks_per_tenant=args.attacks,
        max_configs=args.max_configs,
        num_sources=args.sources,
        distribution=args.distribution,
        window_minutes=args.window_minutes,
        launch_stagger_minutes=args.stagger_minutes,
        checkpoint_every=args.checkpoint_every,
        topology_params=params,
        quotas=tuple(args.quota),
        max_active=args.max_active,
    )
    attacks = spec.attacks()
    controls = []
    for action, requests in (
        (CRASH, args.crash),
        (DRAIN, args.drain),
        (EVICT, args.evict),
    ):
        for index, minute in requests:
            if not 0 <= index < len(attacks):
                log.error(
                    f"--{action} attack index {index} out of range "
                    f"(the fleet has {len(attacks)} attacks)"
                )
                return 2
            attack = attacks[index]
            controls.append(
                FleetEvent(
                    minute=minute,
                    action=action,
                    tenant=attack.tenant,
                    prefix=attack.prefix,
                )
            )
    events = scripted_stream(spec, controls)

    injector_factory = None
    if getattr(args, "fault_plan", None):

        def injector_factory(attack):
            # One injector per shard: chaos draws stay independent of
            # the fair-share interleaving.
            injector = FaultInjector(load_fault_plan(args.fault_plan))
            _wire_faults(injector, obs, log)
            return injector

    manifest = _manifest_for(
        args,
        "fleet",
        tenants=args.tenants,
        attacks_per_tenant=args.attacks,
        max_active=args.max_active,
        stagger_minutes=args.stagger_minutes,
        distribution=args.distribution,
    )
    runtime = FleetRuntime(
        spec,
        events=events,
        obs=obs,
        workers=args.workers,
        checkpoint_dir=args.checkpoint_dir or "",
        injector_factory=injector_factory,
        flight_dir=args.flight_dir or "",
    )

    def _health():
        return {"healthy": True, "shards": len(runtime.shards)}

    server = _start_server(
        args, obs, log, manifest=manifest, health_source=_health
    )
    if server is not None:
        server.tenants_source = runtime.tenants_summary
        server.set_ready()

    windows_done = {"count": 0}
    on_window = None
    if not args.quiet:

        def on_window(key, stats):
            windows_done["count"] += 1
            log.info(
                f"{key[0]}/{key[1]} " + render_window(stats),
                event="window",
                tenant=key[0],
                window=stats.window_index,
            )
            if args.table_every and windows_done["count"] % args.table_every == 0:
                reports = [
                    shard.report() for shard in runtime.shards.values()
                ]
                sys.stderr.write(render_fleet_table(reports) + "\n")

    try:
        if args.serial:
            report = runtime.run(on_window=on_window)
        else:
            import asyncio

            report = asyncio.run(runtime.run_async(on_window=on_window))
    finally:
        runtime.close()
    _export_obs(args, obs, log)
    _finish_server(args, server, obs, log)
    print(render_fleet_summary(report))
    print()
    print(render_fleet_table(report.shards))
    return 0


def _cmd_soak(args: argparse.Namespace) -> int:
    from .fleet import FleetSpec
    from .obs.slo import SOAK_SLOS
    from .soak import (
        ResourceCeilings,
        SoakRunner,
        SoakSpec,
        render_soak_summary,
        render_soak_table,
    )

    obs = _make_obs(args, "soak")
    log = _logbook_for(args, obs)
    if not args.checkpoint_dir:
        log.error(
            "soak needs --checkpoint-dir PATH — restarts resume from disk"
        )
        return 2
    params = replace(SCALES[args.scale], seed=args.seed)
    fleet = FleetSpec(
        seed=args.seed,
        tenants=args.tenants,
        attacks_per_tenant=args.attacks,
        max_configs=args.max_configs,
        num_sources=args.sources,
        distribution=args.distribution,
        window_minutes=args.window_minutes,
        checkpoint_every=args.checkpoint_every,
        checkpoint_keep=args.keep,
        topology_params=params,
    )
    spec = SoakSpec(
        fleet=fleet,
        epochs=args.epochs,
        epoch_minutes=args.epoch_minutes,
        restart_every=args.restart_every,
        kill_rate=args.kill_rate,
        corrupt_rate=args.corrupt_rate,
        fault_plan=args.fault_plan,
        escalation_base=args.escalation_base,
        escalation_growth=args.escalation_growth,
        churn_tenants=args.churn_tenants,
        alternate_versions=not args.no_alternate,
        ceilings=ResourceCeilings(
            rss_mb=args.max_rss_mb,
            open_fds=args.max_fds,
            threads=args.max_threads,
            rss_slope_mb_per_epoch=args.rss_slope_budget,
        ),
    )
    manifest = _manifest_for(
        args,
        "soak",
        tenants=args.tenants,
        attacks_per_tenant=args.attacks,
        epochs=args.epochs,
        epoch_minutes=args.epoch_minutes,
        restart_every=args.restart_every,
        kill_rate=args.kill_rate,
        corrupt_rate=args.corrupt_rate,
        churn_tenants=args.churn_tenants,
        fault_plan=args.fault_plan,
    )
    runner = SoakRunner(
        spec,
        checkpoint_dir=args.checkpoint_dir,
        workers=args.workers,
        obs=obs,
        verify=not args.no_verify,
        flight_dir=args.flight_dir or "",
    )
    # The soak watchdog also knows the resource_ceiling objective, so a
    # sentinel breach flips /readyz while the campaign is served.
    server = _start_server(
        args, obs, log, manifest=manifest, slo_rules=SOAK_SLOS
    )
    if server is not None:
        server.set_ready()
    report = runner.run()
    _export_obs(args, obs, log)
    _finish_server(args, server, obs, log)
    print(render_soak_table(report.epochs))
    print()
    print(render_soak_summary(report))
    if not report.healthy:
        return 1
    if runner.verify and not report.verified:
        return 1
    return 0


def _parse_levels(text: str) -> List[float]:
    """Parse the ``chaos`` sweep's comma-separated intensity levels."""
    try:
        levels = [float(part) for part in text.split(",") if part.strip()]
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"levels {text!r} are not comma-separated numbers"
        )
    if not levels or any(level < 0 for level in levels):
        raise argparse.ArgumentTypeError("need non-negative levels")
    return levels


def _cmd_chaos(args: argparse.Namespace) -> int:
    base_plan = load_fault_plan(args.plan)
    # One bundle spans the whole sweep: span ordinals keep the repeated
    # pipeline phases distinct, and counters accumulate across levels.
    obs = _make_obs(args, "chaos")
    log = _logbook_for(args, obs)
    health = {"report": None}
    server = _start_server(
        args, obs, log,
        manifest=_manifest_for(
            args, "chaos", plan=args.plan, levels=list(args.levels)
        ),
        health_source=lambda: health["report"],
    )
    if server is not None:
        server.set_ready()
    testbed = build_testbed(seed=args.seed, topology_params=SCALES[args.scale])
    rng = random.Random(args.seed + 1)
    candidate_ases = sorted(testbed.topology.stubs or testbed.graph.ases)
    placement = make_placement(
        args.distribution, candidate_ases, args.sources, rng
    )
    log.info(
        f"# chaos sweep: plan {base_plan.name!r} at levels "
        f"{', '.join(f'{level:g}' for level in args.levels)}",
        event="chaos_sweep",
        plan=base_plan.name,
    )
    header = (
        f"{'level':>6} {'faults':>7} {'retries':>8} {'degraded':>9} "
        f"{'clusters':>9} {'mean':>6} {'recall':>7} {'precision':>10} "
        f"{'violations':>11}"
    )
    print(header)
    print("-" * len(header))
    worst_violations = 0
    for level in args.levels:
        injector = FaultInjector(base_plan.scaled(level))
        _wire_faults(injector, obs, log)
        tracker = SpoofTracker(
            testbed, workers=args.workers, injector=injector, obs=obs
        )
        try:
            report = tracker.run(
                max_configs=args.max_configs,
                placement=placement,
                measured=args.measured,
            )
        finally:
            tracker.engine.close()
        resilience = report.resilience
        assert resilience is not None
        health["report"] = resilience
        quality = report.localization.evaluate_against(placement)
        worst_violations = max(worst_violations, len(resilience.violations))
        print(
            f"{level:>6g} {resilience.total_faults:>7d} "
            f"{resilience.retries:>8d} {resilience.degraded_configs:>9d} "
            f"{len(report.clusters):>9d} {report.mean_cluster_size:>6.2f} "
            f"{quality.recall:>7.0%} {quality.precision:>10.0%} "
            f"{len(resilience.violations):>11d}"
        )
    _export_obs(args, obs, log)
    _finish_server(args, server, obs, log)
    if worst_violations:
        print(f"\n{worst_violations} invariant violations — see above")
        return 1
    print("\nall invariants held at every fault level")
    return 0


def _iter_sse(stream):
    """Yield event dicts from a server-sent-events byte stream."""
    import json

    data_lines: List[str] = []
    for raw in stream:
        line = raw.decode("utf-8").rstrip("\r\n")
        if line.startswith("data:"):
            data_lines.append(line[len("data:"):].lstrip())
        elif not line and data_lines:
            yield json.loads("\n".join(data_lines))
            data_lines = []


def _cmd_dash(args: argparse.Namespace) -> int:
    from .analysis.dashboard import Dashboard

    dash = Dashboard(tenant=args.tenant or "")
    if args.url:
        import urllib.error
        import urllib.request

        url = args.url.rstrip("/") + "/events?replay=1"
        if args.limit:
            url += f"&limit={args.limit}"
        try:
            with urllib.request.urlopen(url, timeout=args.timeout) as response:
                for event in _iter_sse(response):
                    dash.ingest(event)
                    if args.every and dash.events_seen % args.every == 0:
                        print(dash.render())
                        print()
        except (urllib.error.URLError, OSError) as exc:
            print(f"cannot read {url}: {exc}", file=sys.stderr)
            return 2
        print(dash.render())
        return 0

    # No --url: drive a seeded local replay and render its event stream.
    from .live import LiveTracebackService, ReplayScenario

    obs = Observability.for_run("dash")
    scenario = ReplayScenario(
        seed=args.seed,
        distribution=args.distribution,
        num_sources=args.sources,
        max_configs=args.max_configs,
    )
    params = replace(SCALES[args.scale], seed=args.seed)
    spec = TestbedSpec(seed=args.seed, topology_params=params)
    service = LiveTracebackService(
        scenario=scenario, spec=spec, workers=args.workers, obs=obs
    )
    try:
        service.run()
    finally:
        service.close()
    for event in obs.bus.history():
        dash.ingest(event)
    print(dash.render())
    return 0


def _cmd_timeline(args: argparse.Namespace) -> int:
    """Post-mortem forensics: merge run artifacts into one timeline."""
    import json as _json

    from .obs.timeline import build_timeline

    if not (args.trace or args.flight_dir or args.checkpoint_dir):
        print(
            "timeline needs at least one source: --trace, --flight-dir, "
            "or --checkpoint-dir",
            file=sys.stderr,
        )
        return 2
    timeline = build_timeline(
        trace_path=args.trace or "",
        flight_dir=args.flight_dir or "",
        checkpoint_dir=args.checkpoint_dir or "",
    )
    timeline = timeline.filtered(
        tenant=args.tenant or "",
        shard=args.shard or "",
        since=args.since,
    )
    if args.json:
        print(_json.dumps(timeline.as_dict(), indent=2, sort_keys=True))
        return 0
    print(timeline.render(limit=args.limit))
    return 0


def _cmd_bench_check(args: argparse.Namespace) -> int:
    from .obs import benchgate

    if args.update:
        path = benchgate.write_history(args.bench_dir, args.history)
        print(f"wrote bench history {path}")
        return 0
    try:
        result = benchgate.check_benchmarks(
            args.bench_dir,
            args.history,
            tolerance=args.tolerance,
            absolute_slack=args.absolute_slack,
        )
    except FileNotFoundError as exc:
        print(
            f"no bench history ({exc}); record one with "
            "`spooftrack bench-check --update`",
            file=sys.stderr,
        )
        return 2
    for line in result.summary_lines():
        print(line)
    return 0 if result.passed else 1


def _cmd_experiments(args: argparse.Namespace) -> int:
    run = _build_run(args)
    sections: List[str] = []
    for figure_id in sorted(FIGURE_RUNNERS):
        result = FIGURE_RUNNERS[figure_id](run)
        sections.append(figure_markdown(result))
    body = "\n".join(sections)
    if args.output == "-":
        print(body)
    else:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(body)
        print(f"wrote {args.output}")
    run.engine.close()
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The ``spooftrack`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="spooftrack",
        description=(
            "Reproduction of 'Tracking Down Sources of Spoofed IP Packets': "
            "BGP-steered localization of spoofed-traffic sources."
        ),
    )
    parser.add_argument("--seed", type=int, default=0, help="global PRNG seed")
    parser.add_argument(
        "--scale",
        choices=sorted(SCALES),
        default="small",
        help="synthetic Internet size",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    def add_workers(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--workers",
            type=int,
            default=1,
            help="simulation worker processes (1 = serial; results are identical)",
        )

    def add_run_options(sub: argparse.ArgumentParser) -> None:
        add_workers(sub)
        sub.add_argument(
            "--max-configs", type=int, default=None, help="truncate the schedule"
        )
        sub.add_argument(
            "--measured",
            action="store_true",
            help="use the full measurement pipeline instead of ground truth",
        )

    def add_obs_options(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--trace",
            default=None,
            metavar="PATH",
            help="write a JSONL span trace (deterministic span ids)",
        )
        sub.add_argument(
            "--metrics",
            default=None,
            metavar="PATH",
            help="write a Prometheus-format metrics dump",
        )
        sub.add_argument(
            "--serve",
            type=int,
            default=None,
            metavar="PORT",
            help=(
                "serve live telemetry over HTTP on this port (0 = pick "
                "free): /metrics /healthz /readyz /manifest /traces "
                "/events (SSE)"
            ),
        )
        sub.add_argument(
            "--serve-linger",
            type=float,
            default=0.0,
            metavar="SECONDS",
            help="keep serving this long after the run finishes",
        )
        sub.add_argument(
            "--log-json",
            action="store_true",
            help="structured JSON-lines operational logs on stderr",
        )
        sub.add_argument(
            "--flight-dir",
            default=None,
            metavar="DIR",
            help=(
                "arm the flight recorder: crashes, kills, rollbacks, SLO "
                "breaches, and SIGUSR1 dump checksummed post-mortem "
                "bundles here (read back with `spooftrack timeline`)"
            ),
        )

    def add_fault_plan(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--fault-plan",
            default=None,
            metavar="NAME|PATH",
            help=(
                "inject faults from a bundled plan "
                f"({', '.join(sorted(BUNDLED_PLANS))}) or a JSON plan file"
            ),
        )

    figures = subparsers.add_parser("figures", help="reproduce paper figures")
    figures.add_argument("ids", nargs="*", help="figure ids (default: all)")
    figures.add_argument(
        "--plot", action="store_true", help="also render ASCII plots"
    )
    add_run_options(figures)
    figures.set_defaults(func=_cmd_figures)

    tables = subparsers.add_parser("tables", help="print Tables I and II")
    tables.set_defaults(func=_cmd_tables)

    from .strategy import available_strategies

    track = subparsers.add_parser("track", help="run the localization pipeline")
    track.add_argument(
        "--distribution",
        choices=PLACEMENT_DISTRIBUTIONS,
        default="single",
        help="spoofing-source placement",
    )
    track.add_argument("--sources", type=int, default=1, help="number of sources")
    track.add_argument(
        "--split-threshold",
        type=int,
        default=None,
        help="run the §V-B large-cluster splitter on clusters above this size",
    )
    track.add_argument(
        "--strategy",
        choices=available_strategies(),
        default=None,
        help=(
            "plan the deployment order with this traceback strategy "
            "(default: schedule order)"
        ),
    )
    add_run_options(track)
    add_fault_plan(track)
    add_obs_options(track)
    track.set_defaults(func=_cmd_track)

    compare = subparsers.add_parser(
        "compare",
        help="race registered traceback strategies on one seeded testbed",
    )
    compare.add_argument(
        "--strategies",
        default=None,
        metavar="NAMES",
        help=(
            "comma-separated registry names to race "
            f"(default: all of {', '.join(available_strategies())})"
        ),
    )
    compare.add_argument(
        "--max-configs", type=int, default=None, help="truncate the schedule"
    )
    compare.add_argument(
        "--json",
        default=None,
        metavar="PATH",
        help="also write the ranked results as a JSON artifact",
    )
    add_workers(compare)
    add_obs_options(compare)
    compare.set_defaults(func=_cmd_compare)

    profile = subparsers.add_parser(
        "profile",
        help="run the pipeline under the profiler and print hotspots",
    )
    profile.add_argument(
        "--distribution",
        choices=PLACEMENT_DISTRIBUTIONS,
        default="single",
        help="spoofing-source placement",
    )
    profile.add_argument(
        "--sources", type=int, default=1, help="number of sources"
    )
    profile.add_argument(
        "--top", type=int, default=15, help="hotspot rows to print"
    )
    add_run_options(profile)
    add_obs_options(profile)
    profile.set_defaults(func=_cmd_profile)

    live = subparsers.add_parser(
        "live",
        help="replay a synthetic attack through the online traceback service",
    )
    live.add_argument(
        "--distribution",
        choices=PLACEMENT_DISTRIBUTIONS,
        default="pareto",
        help="spoofing-source placement",
    )
    live.add_argument(
        "--sources", type=int, default=40, help="number of sources"
    )
    live.add_argument(
        "--max-configs", type=int, default=12, help="truncate the schedule"
    )
    live.add_argument(
        "--window-minutes",
        type=float,
        default=20.0,
        help="honeypot counter-read interval",
    )
    live.add_argument(
        "--batches-per-window",
        type=int,
        default=1,
        help="traffic batches offered to the ingest queue per window",
    )
    live.add_argument(
        "--queue-capacity", type=int, default=64, help="ingest queue bound"
    )
    live.add_argument(
        "--drop-policy",
        choices=("newest", "oldest"),
        default="newest",
        help="which batch to drop when the queue overflows",
    )
    live.add_argument(
        "--in-order",
        action="store_true",
        help="deploy configurations in schedule order (no adaptive reordering)",
    )
    live.add_argument(
        "--strategy",
        choices=available_strategies(),
        default="greedy",
        help="traceback strategy the adaptive controller consults",
    )
    live.add_argument(
        "--min-configs",
        type=int,
        default=3,
        help="never short-circuit before this many configurations",
    )
    live.add_argument(
        "--stop-entropy",
        type=float,
        default=None,
        help="stop once attribution entropy (bits) drops to this",
    )
    live.add_argument(
        "--stop-volume-share",
        type=float,
        default=None,
        help="stop once a singleton cluster holds this estimated-volume share",
    )
    live.add_argument(
        "--churn",
        type=_parse_churn,
        action="append",
        default=[],
        metavar="WINDOW:DRIFT",
        help="schedule route churn (repeatable, e.g. --churn 12:0.3)",
    )
    live.add_argument(
        "--packets-per-window",
        type=int,
        default=0,
        help=">0 switches to packet-sampled traffic at this rate",
    )
    live.add_argument(
        "--nnls-stride",
        type=int,
        default=1,
        help="re-solve attribution NNLS once per N windows (1 = every window)",
    )
    live.add_argument(
        "--checkpoint", default=None, help="checkpoint JSON path"
    )
    live.add_argument(
        "--checkpoint-every",
        type=int,
        default=0,
        help="checkpoint every N windows (0 = only final, with --checkpoint)",
    )
    live.add_argument(
        "--resume",
        default=None,
        help="resume from a checkpoint (other scenario flags are ignored)",
    )
    live.add_argument(
        "--table-every",
        type=int,
        default=4,
        help="row stride of the final window table",
    )
    live.add_argument(
        "--quiet",
        action="store_true",
        help="suppress rolling per-window progress on stderr",
    )
    add_workers(live)
    add_fault_plan(live)
    add_obs_options(live)
    live.set_defaults(func=_cmd_live)

    fleet = subparsers.add_parser(
        "fleet",
        help="multiplex many tenants' attack replays through one runtime",
    )
    fleet.add_argument(
        "--tenants", type=int, default=2, help="tenant origin networks"
    )
    fleet.add_argument(
        "--attacks", type=int, default=2, help="concurrent attacks per tenant"
    )
    fleet.add_argument(
        "--distribution",
        choices=PLACEMENT_DISTRIBUTIONS,
        default="pareto",
        help="spoofing-source placement (per attack)",
    )
    fleet.add_argument(
        "--sources", type=int, default=12, help="sources per attack"
    )
    fleet.add_argument(
        "--max-configs", type=int, default=6,
        help="truncate each shard's schedule",
    )
    fleet.add_argument(
        "--window-minutes",
        type=float,
        default=20.0,
        help="per-shard observation window length",
    )
    fleet.add_argument(
        "--stagger-minutes",
        type=float,
        default=0.0,
        help="spread attack launches this many simulated minutes apart",
    )
    fleet.add_argument(
        "--max-active",
        type=int,
        default=0,
        help="admission bound on concurrently live shards (0 = unbounded)",
    )
    fleet.add_argument(
        "--quota",
        type=_parse_quota,
        action="append",
        default=[],
        metavar="TENANT:WEIGHT",
        help="fair-share weight (repeatable, e.g. --quota tenant-00:2.0)",
    )
    fleet.add_argument(
        "--checkpoint-dir",
        default=None,
        help="directory for per-shard namespaced checkpoints",
    )
    fleet.add_argument(
        "--checkpoint-every",
        type=int,
        default=0,
        help="checkpoint each shard every N windows (needs --checkpoint-dir)",
    )
    fleet.add_argument(
        "--crash",
        type=_parse_indexed_minute,
        action="append",
        default=[],
        metavar="ATTACK:MINUTE",
        help=(
            "kill attack #N's shard at this simulated minute; it resumes "
            "from its checkpoint (repeatable)"
        ),
    )
    fleet.add_argument(
        "--drain",
        type=_parse_indexed_minute,
        action="append",
        default=[],
        metavar="ATTACK:MINUTE",
        help="gracefully finish attack #N's shard at this minute (repeatable)",
    )
    fleet.add_argument(
        "--evict",
        type=_parse_indexed_minute,
        action="append",
        default=[],
        metavar="ATTACK:MINUTE",
        help="remove attack #N's shard at this minute (repeatable)",
    )
    fleet.add_argument(
        "--serial",
        action="store_true",
        help="use the serial driver instead of the asyncio front end "
        "(byte-identical results)",
    )
    fleet.add_argument(
        "--table-every",
        type=int,
        default=8,
        help="print the rolling tenant table every N fleet windows (0 = never)",
    )
    fleet.add_argument(
        "--quiet",
        action="store_true",
        help="suppress rolling per-window progress on stderr",
    )
    add_workers(fleet)
    add_fault_plan(fleet)
    add_obs_options(fleet)
    fleet.set_defaults(func=_cmd_fleet)

    soak = subparsers.add_parser(
        "soak",
        help=(
            "long-horizon soak: epochs of restarts, kills, checkpoint "
            "corruption, and schema migration, verified against an "
            "uninterrupted reference digest"
        ),
    )
    soak.add_argument(
        "--tenants", type=int, default=2, help="tenant origin networks"
    )
    soak.add_argument(
        "--attacks", type=int, default=2, help="concurrent attacks per tenant"
    )
    soak.add_argument(
        "--distribution",
        choices=PLACEMENT_DISTRIBUTIONS,
        default="pareto",
        help="spoofing-source placement (per attack)",
    )
    soak.add_argument(
        "--sources", type=int, default=6, help="sources per attack"
    )
    soak.add_argument(
        "--max-configs", type=int, default=3,
        help="truncate each shard's schedule",
    )
    soak.add_argument(
        "--window-minutes",
        type=float,
        default=20.0,
        help="per-shard observation window length",
    )
    soak.add_argument(
        "--epochs", type=int, default=4, help="soak epochs (last one drains)"
    )
    soak.add_argument(
        "--epoch-minutes",
        type=float,
        default=60.0,
        help="simulated minutes per epoch",
    )
    soak.add_argument(
        "--restart-every",
        type=int,
        default=1,
        help="whole-process restart after every Nth epoch (0 = never)",
    )
    soak.add_argument(
        "--kill-rate",
        type=float,
        default=0.25,
        help="per-shard seeded kill probability at each epoch boundary",
    )
    soak.add_argument(
        "--corrupt-rate",
        type=float,
        default=0.25,
        help="per-shard seeded checkpoint-corruption probability per restart",
    )
    soak.add_argument(
        "--churn-tenants",
        type=int,
        default=0,
        help="extra tenants launched mid-campaign and evicted two epochs later",
    )
    soak.add_argument(
        "--fault-plan",
        default="soak-infra",
        metavar="NAME|PATH",
        help=(
            "fault plan escalated per epoch, restricted to its "
            "result-preserving infra faults ('' disables; default "
            "soak-infra)"
        ),
    )
    soak.add_argument(
        "--escalation-base",
        type=float,
        default=0.5,
        help="fault scale at epoch 0",
    )
    soak.add_argument(
        "--escalation-growth",
        type=float,
        default=0.5,
        help="fault scale increase per epoch",
    )
    soak.add_argument(
        "--no-alternate",
        action="store_true",
        help="do not alternate checkpoint schema versions across epochs",
    )
    soak.add_argument(
        "--no-verify",
        action="store_true",
        help="skip the uninterrupted reference run and digest comparison",
    )
    soak.add_argument(
        "--checkpoint-dir",
        default=None,
        help="directory for per-shard checkpoints (required)",
    )
    soak.add_argument(
        "--checkpoint-every",
        type=int,
        default=1,
        help="checkpoint each shard every N windows",
    )
    soak.add_argument(
        "--keep",
        type=int,
        default=2,
        help="rotated checkpoint generations retained per shard",
    )
    soak.add_argument(
        "--max-rss-mb",
        type=float,
        default=4096.0,
        help="RSS ceiling in MiB (0 disables)",
    )
    soak.add_argument(
        "--max-fds",
        type=int,
        default=1024,
        help="open file descriptor ceiling (0 disables)",
    )
    soak.add_argument(
        "--max-threads",
        type=int,
        default=128,
        help="thread count ceiling (0 disables)",
    )
    soak.add_argument(
        "--rss-slope-budget",
        type=float,
        default=64.0,
        help="RSS leak budget in MiB per epoch across the campaign",
    )
    add_workers(soak)
    add_obs_options(soak)
    soak.set_defaults(func=_cmd_soak)

    chaos = subparsers.add_parser(
        "chaos",
        help="sweep a fault plan across intensities (accuracy vs fault rate)",
    )
    chaos.add_argument(
        "--plan",
        default="mixed",
        metavar="NAME|PATH",
        help=(
            "fault plan to sweep: bundled "
            f"({', '.join(sorted(BUNDLED_PLANS))}) or a JSON plan file"
        ),
    )
    chaos.add_argument(
        "--levels",
        type=_parse_levels,
        default=[0.0, 0.25, 0.5, 1.0],
        help="comma-separated rate multipliers (default 0,0.25,0.5,1.0)",
    )
    chaos.add_argument(
        "--distribution",
        choices=PLACEMENT_DISTRIBUTIONS,
        default="single",
        help="spoofing-source placement",
    )
    chaos.add_argument("--sources", type=int, default=1, help="number of sources")
    add_run_options(chaos)
    add_obs_options(chaos)
    chaos.set_defaults(func=_cmd_chaos)

    headline = subparsers.add_parser(
        "headline", help="paper-vs-reproduction headline metrics"
    )
    add_run_options(headline)
    headline.set_defaults(func=_cmd_headline)

    dataset = subparsers.add_parser(
        "dataset", help="export the measured catchment dataset as JSON (§VI)"
    )
    dataset.add_argument(
        "--output", default="spoof-dataset.json", help="output JSON path"
    )
    dataset.add_argument(
        "--paths",
        default=None,
        help="also export per-configuration forwarding paths (JSONL)",
    )
    add_run_options(dataset)
    dataset.set_defaults(func=_cmd_dataset)

    dash = subparsers.add_parser(
        "dash",
        help="ASCII live dashboard over the observability event stream",
    )
    dash.add_argument(
        "--url",
        default=None,
        help="attach to a served exporter (e.g. http://127.0.0.1:8787); "
        "without it a seeded local replay is rendered",
    )
    dash.add_argument(
        "--limit",
        type=int,
        default=0,
        help="with --url: stop after this many events (0 = until close)",
    )
    dash.add_argument(
        "--every",
        type=int,
        default=0,
        help="with --url: re-render after every N events (0 = only at end)",
    )
    dash.add_argument(
        "--timeout",
        type=float,
        default=10.0,
        help="with --url: socket timeout in seconds",
    )
    dash.add_argument(
        "--tenant",
        default=None,
        help="only render events tagged with this tenant (fleet streams)",
    )
    dash.add_argument(
        "--distribution",
        choices=PLACEMENT_DISTRIBUTIONS,
        default="pareto",
        help="replay mode: spoofing-source placement",
    )
    dash.add_argument(
        "--sources", type=int, default=10,
        help="replay mode: number of sources",
    )
    dash.add_argument(
        "--max-configs", type=int, default=6,
        help="replay mode: truncate the schedule",
    )
    add_workers(dash)
    dash.set_defaults(func=_cmd_dash)

    timeline = subparsers.add_parser(
        "timeline",
        help=(
            "post-mortem forensics: merge traces, flight bundles, and "
            "checkpoints into one causally ordered timeline"
        ),
    )
    timeline.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="JSONL span trace to fold in (written by --trace)",
    )
    timeline.add_argument(
        "--flight-dir",
        default=None,
        metavar="DIR",
        help="directory of flight-*.json post-mortem bundles",
    )
    timeline.add_argument(
        "--checkpoint-dir",
        default=None,
        metavar="DIR",
        help="directory of per-shard checkpoints (and rotated generations)",
    )
    timeline.add_argument(
        "--tenant",
        default=None,
        help="keep only rows tagged with this tenant",
    )
    timeline.add_argument(
        "--shard",
        default=None,
        help="keep only rows whose shard label contains this substring",
    )
    timeline.add_argument(
        "--since",
        type=float,
        default=None,
        metavar="MINUTES",
        help="drop rows before this simulated minute (and unaligned rows)",
    )
    timeline.add_argument(
        "--limit",
        type=int,
        default=0,
        help="render only the last N rows (0 = everything)",
    )
    timeline.add_argument(
        "--json",
        action="store_true",
        help="emit the timeline (entries + digest) as JSON instead of text",
    )
    timeline.set_defaults(func=_cmd_timeline)

    bench_check = subparsers.add_parser(
        "bench-check",
        help="gate fresh BENCH_*.json artifacts against recorded history",
    )
    bench_check.add_argument(
        "--bench-dir",
        default="benchmarks",
        help="directory holding BENCH_*.json artifacts",
    )
    bench_check.add_argument(
        "--history",
        default=None,
        metavar="PATH",
        help="baseline file (default: <bench-dir>/BENCH_history.json)",
    )
    bench_check.add_argument(
        "--tolerance",
        type=float,
        default=0.15,
        help="allowed fractional slowdown per metric (default 0.15)",
    )
    bench_check.add_argument(
        "--absolute-slack",
        type=float,
        default=0.005,
        metavar="SECONDS",
        help="ignore deltas below this many seconds (default 0.005)",
    )
    bench_check.add_argument(
        "--update",
        action="store_true",
        help="record the current artifacts as the new baseline",
    )
    bench_check.set_defaults(func=_cmd_bench_check)

    experiments = subparsers.add_parser(
        "experiments", help="regenerate EXPERIMENTS.md figure sections"
    )
    experiments.add_argument(
        "--output", default="-", help="output path ('-' for stdout)"
    )
    add_run_options(experiments)
    experiments.set_defaults(func=_cmd_experiments)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for the ``spooftrack`` console script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    _ACTIVE_FLIGHTS.clear()
    try:
        return args.func(args)
    except FaultInjectionError as exc:
        print(f"fault plan error: {exc}", file=sys.stderr)
        return 2
    except Exception as exc:
        # The black box is most valuable at exactly this moment: dump
        # the ring before the traceback unwinds the process.
        for recorder in _ACTIVE_FLIGHTS:
            recorder.dump("crash", context={"error": repr(exc)})
        raise
    finally:
        for recorder in _ACTIVE_FLIGHTS:
            recorder.detach()


if __name__ == "__main__":
    sys.exit(main())
