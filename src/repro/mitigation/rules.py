"""DDoS mitigation driven by localization results (paper §I, §VIII).

The paper motivates localization as an input to "automatic DoS mitigation
systems that use, e.g., BGP communities to trigger remote traffic
blackholing [RTBH] or BGP flowspec to configure traffic filters".  This
module closes that loop:

* :class:`BlackholeRule` — classic remotely-triggered blackholing: the
  victim prefix is dropped wholesale upstream.  Stops the attack and all
  legitimate traffic alike (100% collateral damage).
* :class:`FlowspecRule` — a filter dropping traffic *from specific source
  ASes* on specific peering links, which is only as good as the
  localization behind it: small suspect clusters ⇒ little collateral.
* :func:`rules_from_localization` — turn a
  :class:`~repro.core.localization.LocalizationResult` into flowspec
  rules covering a target fraction of the attack volume.
* :func:`evaluate_mitigation` — score a rule set against ground truth:
  attack volume dropped vs legitimate volume caught in the filters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence

from ..core.localization import LocalizationResult
from ..spoof.sources import SourcePlacement
from ..types import ASN, Catchment, LinkId


@dataclass(frozen=True)
class BlackholeRule:
    """Remotely-triggered blackhole: drop everything toward the victim.

    Attributes:
        scope_links: peering links the blackhole applies to (empty = all).
    """

    scope_links: FrozenSet[LinkId] = frozenset()

    def matches(self, source_as: ASN, ingress_link: LinkId) -> bool:
        """A blackhole drops every flow within its scope."""
        return not self.scope_links or ingress_link in self.scope_links


@dataclass(frozen=True)
class FlowspecRule:
    """A source-AS-scoped drop filter (BGP flowspec, RFC 5575).

    Attributes:
        source_ases: ASes whose traffic the filter drops.  In deployment
            these become source-prefix match rules (the ASes' announced
            prefixes); at our AS granularity the AS set is the rule.
        scope_links: peering links the filter is installed on (empty =
            all links).
    """

    source_ases: FrozenSet[ASN]
    scope_links: FrozenSet[LinkId] = frozenset()

    def __post_init__(self) -> None:
        if not self.source_ases:
            raise ValueError("flowspec rule needs at least one source AS")

    def matches(self, source_as: ASN, ingress_link: LinkId) -> bool:
        """True if a flow from ``source_as`` on ``ingress_link`` is dropped."""
        if self.scope_links and ingress_link not in self.scope_links:
            return False
        return source_as in self.source_ases


MitigationRule = object  # BlackholeRule | FlowspecRule (3.9-compatible alias)


def rules_from_localization(
    result: LocalizationResult,
    volume_fraction: float = 0.95,
    max_rules: Optional[int] = None,
    catchments: Optional[Mapping[LinkId, Catchment]] = None,
) -> List[FlowspecRule]:
    """One flowspec rule per suspect cluster, best-ranked first.

    Args:
        result: localization output (clusters ranked by estimated volume).
        volume_fraction: stop once this fraction of the estimated volume
            is covered.
        max_rules: hard cap on emitted rules (flowspec tables are small).
        catchments: when given (the currently active configuration's
            catchments), each rule is scoped to the single link the
            cluster's traffic arrives on, minimizing filter footprint.

    Raises:
        ValueError: for an out-of-range ``volume_fraction``.
    """
    if not 0.0 < volume_fraction <= 1.0:
        raise ValueError("volume_fraction must be in (0, 1]")
    total = sum(cluster.estimated_volume for cluster in result.ranked)
    rules: List[FlowspecRule] = []
    covered = 0.0
    link_of: Dict[ASN, LinkId] = {}
    if catchments:
        for link, members in catchments.items():
            for asn in members:
                link_of[asn] = link
    for cluster in result.ranked:
        if cluster.estimated_volume <= 0.0:
            break
        if total > 0 and covered >= volume_fraction * total:
            break
        if max_rules is not None and len(rules) >= max_rules:
            break
        scope: FrozenSet[LinkId] = frozenset()
        if link_of:
            links = {link_of[asn] for asn in cluster.members if asn in link_of}
            if len(links) == 1:
                scope = frozenset(links)
        rules.append(
            FlowspecRule(source_ases=cluster.members, scope_links=scope)
        )
        covered += cluster.estimated_volume
    return rules


@dataclass
class MitigationReport:
    """Ground-truth evaluation of a mitigation rule set.

    Attributes:
        attack_volume_dropped: fraction of spoofed volume the rules drop.
        legitimate_volume_dropped: fraction of legitimate volume caught
            (collateral damage).
        rules_installed: number of rules evaluated.
        ases_filtered: total source ASes covered by the rules.
    """

    attack_volume_dropped: float
    legitimate_volume_dropped: float
    rules_installed: int
    ases_filtered: int

    @property
    def selectivity(self) -> float:
        """Dropped attack share minus collateral share (1.0 is perfect)."""
        return self.attack_volume_dropped - self.legitimate_volume_dropped


def evaluate_mitigation(
    rules: Sequence[object],
    placement: SourcePlacement,
    catchments: Mapping[LinkId, Catchment],
    legitimate_sources: Optional[Iterable[ASN]] = None,
) -> MitigationReport:
    """Score rules against the ground-truth attack placement.

    Attack flows originate at the placement's ASes (volume ∝ sources) and
    ingress on the active configuration's catchment links; legitimate
    flows (one unit each) come from ``legitimate_sources`` (default:
    every AS in any catchment).
    """
    link_of: Dict[ASN, LinkId] = {}
    for link, members in catchments.items():
        for asn in members:
            link_of[asn] = link

    def dropped(source: ASN) -> bool:
        link = link_of.get(source)
        if link is None:
            return False
        return any(rule.matches(source, link) for rule in rules)

    attack_volumes = placement.volume_by_as(1.0)
    attack_dropped = sum(
        volume for source, volume in attack_volumes.items() if dropped(source)
    )
    attack_total = sum(
        volume
        for source, volume in attack_volumes.items()
        if link_of.get(source) is not None
    )

    if legitimate_sources is None:
        legitimate_sources = sorted(link_of)
    legit_total = 0
    legit_dropped = 0
    for source in legitimate_sources:
        if link_of.get(source) is None:
            continue
        legit_total += 1
        if dropped(source):
            legit_dropped += 1

    filtered: set = set()
    for rule in rules:
        if isinstance(rule, FlowspecRule):
            filtered |= rule.source_ases
        elif isinstance(rule, BlackholeRule):
            filtered |= set(link_of)
    return MitigationReport(
        attack_volume_dropped=(
            attack_dropped / attack_total if attack_total else 0.0
        ),
        legitimate_volume_dropped=(
            legit_dropped / legit_total if legit_total else 0.0
        ),
        rules_installed=len(rules),
        ases_filtered=len(filtered),
    )
