"""Mitigation driven by localization: RTBH and flowspec rules (paper §I)."""

from .rules import (
    BlackholeRule,
    FlowspecRule,
    MitigationReport,
    evaluate_mitigation,
    rules_from_localization,
)

__all__ = [
    "BlackholeRule",
    "FlowspecRule",
    "MitigationReport",
    "rules_from_localization",
    "evaluate_mitigation",
]
