"""Legacy setup shim.

All project metadata lives in pyproject.toml; this file exists only so pip
can perform a legacy editable install in offline environments that lack
the `wheel` package (required for PEP 660 editable wheels).
"""

from setuptools import setup

setup()
